"""Process-sharded prediction: micro-batches fanned across predictors.

The thread-pool serving tier hit the GIL ceiling
(``BENCH_serving_concurrency.json``: 5.5x at 2 workers *falling* to
3.2x at 4 — numpy gathers on small micro-batches don't release the GIL
long enough).  :class:`ProcessPredictorPool` moves the assemble+predict
stage into worker processes: each worker loads its own copy of the
model artifact and feature service at startup, a flushed micro-batch's
payloads are partitioned into contiguous chunks dispatched one per
worker, and the chunk results are gathered back in order — per-row
results are independent of chunk boundaries, so the output is
byte-identical to the single-process path.

Telemetry crosses back with the per-worker metric merge
(:meth:`repro.obs.MetricsRegistry.export_state`): each worker's
``serving.latency.*`` histograms and cache counters accumulate in its
private registry; :meth:`merge_stats` drains every worker's delta into
the parent server's registry, so ``ServerStats`` reads exactly as if
every observation had happened in-process.

Chunks cross the process boundary over the same shared-memory
transport the training tier uses (:mod:`repro.parallel.shm`): the
parent exports each merged chunk's columns into one named segment and
queues only the :class:`~repro.parallel.shm.ColumnsHandle`; the worker
attaches, serves the borrowed views, and releases the segment in a
``finally`` — so a chunk's bytes are copied once (the parent's
export), never pickled through a pipe.  Segment names are
deterministic (``reprosrv<pid>w<worker>d<dispatch>a<attempt>``), so
when a worker dies mid-flight the parent sweeps the one segment that
worker could still hold before re-exporting the kept chunk under the
next attempt's name.

A predictor that dies is detected at dispatch, counted
(``parallel.serving.worker_deaths``), respawned, and its chunk is
re-dispatched — worker death is a retryable fault, not a failed batch
(its un-merged telemetry delta dies with it; counters may undercount
after a crash, results never do).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections.abc import Sequence

import numpy as np

from repro.obs import MetricsRegistry
from repro.parallel.prefetch import _resolve_context
from repro.parallel.shm import (
    export_columns,
    import_columns,
    release,
    sweep,
)

__all__ = ["ProcessPredictorPool"]

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 5.0


def _merge_payloads(payloads: Sequence) -> dict:
    """Concatenate per-request column dicts into one contiguous dict.

    Done in the *parent* so a dispatched chunk crosses the process
    boundary as one dict of contiguous arrays — pickling hundreds of
    per-row dicts costs more than the predict itself would.
    """
    if len(payloads) == 1:
        return dict(payloads[0])
    return {
        column: np.concatenate([np.asarray(p[column]) for p in payloads])
        for column in payloads[0]
    }


def _predictor_worker(
    artifact, schema, cache_capacity: int, engine: str, tasks, results
) -> None:
    """Worker entry point: serve chunks through a private server.

    Module-level so ``spawn`` can pickle it.  The worker's server is
    the plain single-worker, inline-flush configuration — the same
    assemble/predict path the parent would have run — with its own
    registry accumulating the worker's telemetry between ``stats``
    drains.  The fingerprint was validated by the parent; revalidating
    here would only re-run the strategy replay per worker.
    """
    from repro.serving.server import PredictionServer

    try:
        server = PredictionServer(
            artifact,
            schema,
            cache_capacity=cache_capacity,
            max_wait_s=None,
            background_flush=False,
            validate_fingerprint=False,
            engine=engine,
        )
        while True:
            op, *args = tasks.get()
            if op == "stop":
                return
            if op == "predict":
                (handle,) = args
                segment, merged = import_columns(handle)
                try:
                    results.put(("ok", server._predict_merged(merged)))
                finally:
                    # The views die here; predictions are decoded
                    # labels, so nothing in the result borrows the
                    # segment.
                    release(segment)
            elif op == "stats":
                state = server.metrics.export_state()
                server.metrics.reset()
                results.put(("ok", state))
            else:
                raise ValueError(f"unknown predictor op {op!r}")
    # The results queue IS the error route back to the parent.
    # repro: lint-ignore[exception-hygiene]
    except BaseException as error:
        results.put(("error", error))


class ProcessPredictorPool:
    """A pool of predictor processes serving payload chunks.

    Parameters
    ----------
    artifact, schema:
        Pickled into each worker at startup (under ``fork`` they are
        inherited); every worker builds its own feature service, so no
        state is shared between predictors.
    workers:
        Predictor processes.
    cache_capacity:
        Dimension-index cache capacity per worker.
    registry:
        Parent-side registry for ``parallel.serving.*`` pool metrics
        (dispatches, worker deaths).  Worker-side serving metrics merge
        in through :meth:`merge_stats`.
    start_method:
        As for :class:`~repro.parallel.ProcessPrefetchingSource`.
    engine:
        Serving engine built inside each worker's private server
        (``"implicit"`` or ``"factorized"``), as for
        :class:`~repro.serving.server.PredictionServer`.
    """

    def __init__(
        self,
        artifact,
        schema,
        workers: int = 2,
        cache_capacity: int = 8,
        registry: MetricsRegistry | None = None,
        start_method: str | None = None,
        engine: str = "implicit",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.engine = engine
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._dispatches = self.metrics.counter("parallel.serving.dispatches")
        self._deaths = self.metrics.counter("parallel.serving.worker_deaths")
        self._artifact = artifact
        self._schema = schema
        self._cache_capacity = cache_capacity
        self._ctx = _resolve_context(start_method)
        self._tasks = [self._ctx.Queue() for _ in range(workers)]
        self._results = [self._ctx.Queue() for _ in range(workers)]
        self._procs = [self._spawn(w) for w in range(workers)]
        self._closed = False
        self._pid = os.getpid()
        self._dispatch_serial = 0
        # One dispatch in flight at a time: chunks of a single batch
        # run in parallel across the pool; concurrent flush triggers
        # serialise here.
        self._dispatch_lock = threading.Lock()

    def _spawn(self, w: int):
        proc = self._ctx.Process(
            target=_predictor_worker,
            args=(
                self._artifact,
                self._schema,
                self._cache_capacity,
                self.engine,
                self._tasks[w],
                self._results[w],
            ),
            name=f"repro-predictor-{w}",
            daemon=False,
        )
        proc.start()
        return proc

    def _respawn(self, w: int) -> None:
        """Replace a dead predictor (fresh queues drop stale results)."""
        self._deaths.inc()
        self._procs[w].join()
        for channel in (self._tasks[w], self._results[w]):
            channel.close()
            channel.join_thread()
        self._tasks[w] = self._ctx.Queue()
        self._results[w] = self._ctx.Queue()
        self._procs[w] = self._spawn(w)

    def _call(self, w: int, op, *args, retries: int = 1):
        """One op on worker ``w``, respawning and retrying on death."""
        self._tasks[w].put((op, *args))
        proc, results = self._procs[w], self._results[w]
        while True:
            try:
                kind, payload = results.get(timeout=_POLL_SECONDS)
                break
            except queue.Empty:
                if proc.is_alive():
                    continue
                try:
                    kind, payload = results.get_nowait()
                    break
                except queue.Empty:
                    self._respawn(w)
                    if retries > 0:
                        return self._call(w, op, *args, retries=retries - 1)
                    raise RuntimeError(
                        f"predictor worker {w} died twice running {op!r}"
                    ) from None
        if kind == "error":
            raise payload
        return payload

    def _segment_name(self, w: int, dispatch: int, attempt: int) -> str:
        """Deterministic per-chunk segment name, the sweep window's key.

        One name per (worker, dispatch, attempt): the parent knows
        exactly which segment a dead worker could still hold, so crash
        cleanup is a one-name :func:`~repro.parallel.shm.sweep`."""
        return f"reprosrv{self._pid}w{w}d{dispatch}a{attempt}"

    def _dispatch_chunk(self, w: int, merged: dict, dispatch: int, attempt: int):
        """Export one merged chunk and queue its handle to worker ``w``."""
        handle = export_columns(
            self._segment_name(w, dispatch, attempt), merged
        )
        self._tasks[w].put(("predict", handle))
        return handle

    def predict(self, payloads: Sequence) -> list:
        """Predict a flushed batch's payload list, sharded by chunk.

        Payloads are split into up to ``workers`` contiguous chunks,
        one per predictor; each chunk crosses as one shared-memory
        segment; results come back in chunk order, so the output order
        matches the single-process path exactly.
        """
        if self._closed:
            raise RuntimeError("ProcessPredictorPool is closed")
        with self._dispatch_lock:
            dispatch = self._dispatch_serial
            self._dispatch_serial += 1
            self._dispatches.inc()
            n_chunks = min(self.workers, len(payloads))
            bounds = np.linspace(0, len(payloads), n_chunks + 1, dtype=int)
            chunks = [
                (w, _merge_payloads(list(payloads[lo:hi])))
                for w, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
                if hi > lo
            ]
            # Export every chunk before gathering any: all workers run
            # their chunks concurrently.
            inflight = [
                (w, merged, self._dispatch_chunk(w, merged, dispatch, 0))
                for w, merged in chunks
            ]
            out: list = []
            for w, merged, handle in inflight:
                out.extend(self._gather(w, merged, dispatch, handle))
            return out

    def _gather(
        self, w: int, merged: dict, dispatch: int, handle, attempt: int = 0
    ) -> list:
        """Collect one dispatched chunk, re-running it on a respawned
        worker if the predictor died mid-flight.

        The parent kept the merged chunk, so redelivery is sweep the
        dead worker's segment (it may have died before attaching, so
        the name can still exist), re-export under the next attempt's
        name, and gather again."""
        proc, results = self._procs[w], self._results[w]
        while True:
            try:
                kind, payload = results.get(timeout=_POLL_SECONDS)
                break
            except queue.Empty:
                if proc.is_alive():
                    continue
                try:
                    kind, payload = results.get_nowait()
                    break
                except queue.Empty:
                    sweep([handle.segment])
                    self._respawn(w)
                    if attempt < 1:
                        retry = self._dispatch_chunk(
                            w, merged, dispatch, attempt + 1
                        )
                        return self._gather(
                            w, merged, dispatch, retry, attempt + 1
                        )
                    raise RuntimeError(
                        f"predictor worker {w} died twice running 'predict'"
                    ) from None
        if kind == "error":
            raise payload
        return payload

    def merge_stats(self, registry: MetricsRegistry) -> None:
        """Drain every worker's telemetry delta into ``registry``.

        Each worker exports-and-resets its private registry, so every
        observation merges exactly once however often this is called.
        A dead worker is respawned by the stats call itself (its
        un-exported delta is lost with it).
        """
        with self._dispatch_lock:
            for w in range(self.workers):
                registry.merge_state(self._call(w, "stats"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._dispatch_lock:
            for w, proc in enumerate(self._procs):
                if proc.is_alive():
                    self._tasks[w].put(("stop",))
            deadline = time.monotonic() + _JOIN_SECONDS
            for proc in self._procs:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
            for channel in (*self._tasks, *self._results):
                channel.close()
                channel.join_thread()

    def __enter__(self) -> "ProcessPredictorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ProcessPredictorPool(workers={self.workers})"
