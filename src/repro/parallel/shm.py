"""Zero-copy shard transport over POSIX shared memory.

A producer process exports one encoded shard — the ``(codes, labels)``
pair of a :class:`~repro.ml.encoding.CategoricalMatrix` plus a small
picklable header — into a named ``multiprocessing.shared_memory``
segment; the consumer attaches and rebuilds the shard as numpy views
*into the segment*, so the shard's bytes cross the process boundary
exactly once (the producer's copy-in) instead of being pickled,
piped, and unpickled.

Lifecycle contract (enforced by ``tests/test_parallel_prefetch.py``):

- the producer creates the segment, copies the arrays in, detaches,
  and hands only the :class:`ShardHandle` over the queue — from that
  moment the consumer owns the segment;
- the consumer attaches, builds its views, and calls :func:`release`
  when it advances past the shard: the segment is unlinked (the name
  disappears from ``/dev/shm``) and the mapping dropped, so the views
  are *borrowed* — valid only until release.  A consumer that needs a
  shard beyond the current iteration must copy it first;
- segment names are deterministic (``reprop<pid>w<worker>g<pass>s<n>``),
  so after a worker dies mid-pass the parent can sweep the bounded
  window of names the worker could have exported and unlink any
  orphans — crash cleanup without a registry.

CPython 3.11 wrinkles this module exists to contain: attaching (not
just creating) registers the segment with the process's
``resource_tracker``, so the producer must explicitly unregister after
handoff or the tracker double-unlinks at exit; and numpy views built
over ``shm.buf`` slices end up based on the raw ``mmap``, so
``shm.close()`` unmaps *under* them rather than raising ``BufferError``
— which is why release-time is the hard end of the views' lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.ml.encoding import CategoricalMatrix

__all__ = ["ShardHandle", "export_shard", "import_shard", "release", "sweep"]


@dataclass(frozen=True)
class ShardHandle:
    """The picklable header describing one exported shard segment."""

    segment: str
    index: int
    n_rows: int
    n_features: int
    n_levels: tuple[int, ...]
    names: tuple[str, ...]
    labels_dtype: str

    @property
    def codes_bytes(self) -> int:
        return self.n_rows * self.n_features * 8

    @property
    def labels_bytes(self) -> int:
        return self.n_rows * np.dtype(self.labels_dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.codes_bytes + self.labels_bytes


def export_shard(
    segment: str, index: int, X: CategoricalMatrix, y: np.ndarray
) -> ShardHandle:
    """Copy one encoded shard into a named segment; return its handle.

    After this returns the producer holds no mapping: the handle alone
    travels over the queue, and the consumer (or the parent's crash
    sweep) is responsible for unlinking the segment.
    """
    codes = np.ascontiguousarray(X.codes, dtype=np.int64)
    labels = np.ascontiguousarray(y)
    handle = ShardHandle(
        segment=segment,
        index=int(index),
        n_rows=int(codes.shape[0]),
        n_features=int(codes.shape[1]),
        n_levels=tuple(int(k) for k in X.n_levels),
        names=tuple(X.names),
        labels_dtype=labels.dtype.str,
    )
    shm = shared_memory.SharedMemory(
        name=segment, create=True, size=max(1, handle.nbytes)
    )
    try:
        codes_view = np.ndarray(
            codes.shape, dtype=np.int64, buffer=shm.buf[: handle.codes_bytes]
        )
        codes_view[...] = codes
        labels_view = np.ndarray(
            labels.shape,
            dtype=labels.dtype,
            buffer=shm.buf[
                handle.codes_bytes : handle.codes_bytes + handle.labels_bytes
            ],
        )
        labels_view[...] = labels
        del codes_view, labels_view
    finally:
        shm.close()
        # Ownership moved to the consumer: without this, *this*
        # process's resource tracker would unlink the segment at exit
        # out from under whoever still holds the handle (CPython
        # registers on create and on attach alike).
        resource_tracker.unregister(shm._name, "shared_memory")
    return handle


def import_shard(
    handle: ShardHandle,
) -> tuple[shared_memory.SharedMemory, CategoricalMatrix, np.ndarray]:
    """Attach a handle's segment and rebuild the shard as views into it.

    Returns ``(segment, X, y)``: the codes and labels are zero-copy
    views borrowed from the segment — they become invalid the moment
    :func:`release` is called, so consumers that keep a shard past the
    current iteration must copy it.  The codes were range-checked when
    the wrapped source produced them, so revalidation is skipped.
    """
    shm = shared_memory.SharedMemory(name=handle.segment)
    codes = np.ndarray(
        (handle.n_rows, handle.n_features),
        dtype=np.int64,
        buffer=shm.buf[: handle.codes_bytes],
    )
    labels = np.ndarray(
        (handle.n_rows,),
        dtype=np.dtype(handle.labels_dtype),
        buffer=shm.buf[
            handle.codes_bytes : handle.codes_bytes + handle.labels_bytes
        ],
    )
    X = CategoricalMatrix(codes, handle.n_levels, handle.names, validate=False)
    return shm, X, labels


def release(shm: shared_memory.SharedMemory) -> None:
    """Unlink an attached segment and drop this process's mapping.

    Unlink comes first so the name leaves ``/dev/shm`` immediately
    (idempotent: a segment someone else already unlinked is fine);
    ``close()`` then unmaps, invalidating any views still built over
    the segment — callers must be done with the shard's arrays (or
    have copied them) before releasing.
    """
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        pass


def sweep(segments) -> int:
    """Unlink every named segment that still exists; returns the count.

    Crash cleanup: the parent calls this with the bounded window of
    deterministic names a dead worker could have exported but never
    handed over.
    """
    removed = 0
    for name in segments:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        release(shm)
        removed += 1
    return removed
