"""Zero-copy shard transport over POSIX shared memory.

A producer process exports one encoded shard — the ``(codes, labels)``
pair of a :class:`~repro.ml.encoding.CategoricalMatrix`, or the compact
layout of a :class:`~repro.ml.sparse.FactorizedMatrix` — plus a small
picklable header into a named ``multiprocessing.shared_memory``
segment; the consumer attaches and rebuilds the shard as numpy views
*into the segment*, so the shard's bytes cross the process boundary
exactly once (the producer's copy-in) instead of being pickled,
piped, and unpickled.  :func:`export_columns`/:func:`import_columns`
apply the same contract to the serving pool's merged-payload chunks.

Lifecycle contract (enforced by ``tests/test_parallel_prefetch.py``):

- the producer creates the segment, copies the arrays in, detaches,
  and hands only the :class:`ShardHandle` over the queue — from that
  moment the consumer owns the segment;
- the consumer attaches, builds its views, and calls :func:`release`
  when it advances past the shard: the segment is unlinked (the name
  disappears from ``/dev/shm``) and the mapping dropped, so the views
  are *borrowed* — valid only until release.  A consumer that needs a
  shard beyond the current iteration must copy it first;
- segment names are deterministic (``reprop<pid>w<worker>g<pass>s<n>``),
  so after a worker dies mid-pass the parent can sweep the bounded
  window of names the worker could have exported and unlink any
  orphans — crash cleanup without a registry.

CPython 3.11 wrinkles this module exists to contain: attaching (not
just creating) registers the segment with the process's
``resource_tracker``, so the producer must explicitly unregister after
handoff or the tracker double-unlinks at exit; and numpy views built
over ``shm.buf`` slices end up based on the raw ``mmap``, so
``shm.close()`` unmaps *under* them rather than raising ``BufferError``
— which is why release-time is the hard end of the views' lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.ml.encoding import CategoricalMatrix
from repro.ml.sparse import FactorizedGroup, FactorizedMatrix

__all__ = [
    "ShardHandle",
    "FactorizedShardHandle",
    "ColumnsHandle",
    "export_shard",
    "import_shard",
    "export_columns",
    "import_columns",
    "release",
    "sweep",
]


@dataclass(frozen=True)
class ShardHandle:
    """The picklable header describing one exported shard segment."""

    segment: str
    index: int
    n_rows: int
    n_features: int
    n_levels: tuple[int, ...]
    names: tuple[str, ...]
    labels_dtype: str

    @property
    def codes_bytes(self) -> int:
        return self.n_rows * self.n_features * 8

    @property
    def labels_bytes(self) -> int:
        return self.n_rows * np.dtype(self.labels_dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.codes_bytes + self.labels_bytes


@dataclass(frozen=True)
class FactorizedShardHandle:
    """Header for an exported factorized shard segment.

    The segment lays out, in order: the ``(n, d_fact)`` fact codes,
    then per group its ``(n,)`` dimension rows followed by its
    ``(n_dim_rows, d_R)`` code block (all int64), then the labels —
    the same compact form :class:`~repro.ml.sparse.FactorizedMatrix`
    holds in memory, so the segment is smaller than the gathered
    shard's by roughly the dimension fan-out.
    """

    segment: str
    index: int
    n_rows: int
    names: tuple[str, ...]
    n_levels: tuple[int, ...]
    fact_positions: tuple[int, ...]
    #: Per group: ``(dimension name, feature positions, n_dim_rows)``.
    groups: tuple[tuple[str, tuple[int, ...], int], ...]
    labels_dtype: str

    @property
    def codes_bytes(self) -> int:
        total = self.n_rows * len(self.fact_positions)
        for _, positions, n_dim_rows in self.groups:
            total += self.n_rows + n_dim_rows * len(positions)
        return total * 8

    @property
    def labels_bytes(self) -> int:
        return self.n_rows * np.dtype(self.labels_dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.codes_bytes + self.labels_bytes


@dataclass(frozen=True)
class ColumnsHandle:
    """Header for an exported dict of named per-row column arrays.

    The serving chunk transport: a merged payload (fact column name →
    code vector) crosses as one segment holding each column's bytes in
    declaration order.
    """

    segment: str
    n_rows: int
    #: Per column: ``(name, dtype string)``.
    columns: tuple[tuple[str, str], ...]

    @property
    def nbytes(self) -> int:
        return sum(
            self.n_rows * np.dtype(dtype).itemsize
            for _, dtype in self.columns
        )


def _copy_into(shm: shared_memory.SharedMemory, arrays) -> None:
    """Copy a sequence of arrays into the segment back to back."""
    offset = 0
    for array in arrays:
        view = np.ndarray(
            array.shape,
            dtype=array.dtype,
            buffer=shm.buf[offset : offset + array.nbytes],
        )
        view[...] = array
        offset += array.nbytes
        del view


def export_shard(
    segment: str, index: int, X, y: np.ndarray
) -> "ShardHandle | FactorizedShardHandle":
    """Copy one encoded shard into a named segment; return its handle.

    Dispatches on the shard type: a gathered
    :class:`~repro.ml.encoding.CategoricalMatrix` exports its code
    table, a :class:`~repro.ml.sparse.FactorizedMatrix` exports its
    factorized layout (see :class:`FactorizedShardHandle`).  After this
    returns the producer holds no mapping: the handle alone travels
    over the queue, and the consumer (or the parent's crash sweep) is
    responsible for unlinking the segment.
    """
    if isinstance(X, FactorizedMatrix):
        return _export_factorized(segment, index, X, y)
    codes = np.ascontiguousarray(X.codes, dtype=np.int64)
    labels = np.ascontiguousarray(y)
    handle = ShardHandle(
        segment=segment,
        index=int(index),
        n_rows=int(codes.shape[0]),
        n_features=int(codes.shape[1]),
        n_levels=tuple(int(k) for k in X.n_levels),
        names=tuple(X.names),
        labels_dtype=labels.dtype.str,
    )
    shm = shared_memory.SharedMemory(
        name=segment, create=True, size=max(1, handle.nbytes)
    )
    try:
        codes_view = np.ndarray(
            codes.shape, dtype=np.int64, buffer=shm.buf[: handle.codes_bytes]
        )
        codes_view[...] = codes
        labels_view = np.ndarray(
            labels.shape,
            dtype=labels.dtype,
            buffer=shm.buf[
                handle.codes_bytes : handle.codes_bytes + handle.labels_bytes
            ],
        )
        labels_view[...] = labels
        del codes_view, labels_view
    finally:
        shm.close()
        # Ownership moved to the consumer: without this, *this*
        # process's resource tracker would unlink the segment at exit
        # out from under whoever still holds the handle (CPython
        # registers on create and on attach alike).
        resource_tracker.unregister(shm._name, "shared_memory")
    return handle


def _factorized_arrays(X: FactorizedMatrix, labels: np.ndarray):
    """The shard's arrays in segment order (codes first, labels last)."""
    yield np.ascontiguousarray(X.fact_codes, dtype=np.int64)
    for group in X.groups:
        yield np.ascontiguousarray(group.dim_rows, dtype=np.int64)
        yield np.ascontiguousarray(group.block, dtype=np.int64)
    yield labels


def _export_factorized(
    segment: str, index: int, X: FactorizedMatrix, y: np.ndarray
) -> FactorizedShardHandle:
    labels = np.ascontiguousarray(y)
    handle = FactorizedShardHandle(
        segment=segment,
        index=int(index),
        n_rows=int(X.n_rows),
        names=tuple(X.names),
        n_levels=tuple(int(k) for k in X.n_levels),
        fact_positions=tuple(int(p) for p in X.fact_positions),
        groups=tuple(
            (
                group.name,
                tuple(int(p) for p in group.positions),
                int(group.n_dim_rows),
            )
            for group in X.groups
        ),
        labels_dtype=labels.dtype.str,
    )
    shm = shared_memory.SharedMemory(
        name=segment, create=True, size=max(1, handle.nbytes)
    )
    try:
        _copy_into(shm, _factorized_arrays(X, labels))
    finally:
        shm.close()
        resource_tracker.unregister(shm._name, "shared_memory")
    return handle


def _import_factorized(
    handle: FactorizedShardHandle,
) -> tuple[shared_memory.SharedMemory, FactorizedMatrix, np.ndarray]:
    shm = shared_memory.SharedMemory(name=handle.segment)
    offset = 0

    def view(shape, dtype):
        nonlocal offset
        size = int(np.prod(shape)) * np.dtype(dtype).itemsize
        array = np.ndarray(
            shape, dtype=dtype, buffer=shm.buf[offset : offset + size]
        )
        offset += size
        return array

    fact_codes = view((handle.n_rows, len(handle.fact_positions)), np.int64)
    groups = []
    for name, positions, n_dim_rows in handle.groups:
        dim_rows = view((handle.n_rows,), np.int64)
        block = view((n_dim_rows, len(positions)), np.int64)
        groups.append(FactorizedGroup(name, positions, dim_rows, block))
    labels = view((handle.n_rows,), np.dtype(handle.labels_dtype))
    X = FactorizedMatrix(
        names=handle.names,
        n_levels=handle.n_levels,
        fact_positions=np.asarray(handle.fact_positions, dtype=np.int64),
        fact_codes=fact_codes,
        groups=tuple(groups),
    )
    return shm, X, labels


def import_shard(handle):
    """Attach a handle's segment and rebuild the shard as views into it.

    Returns ``(segment, X, y)``: the arrays are zero-copy views
    borrowed from the segment — they become invalid the moment
    :func:`release` is called, so consumers that keep a shard past the
    current iteration must copy it.  The codes were range-checked when
    the wrapped source produced them, so revalidation is skipped.
    ``X`` is a :class:`~repro.ml.encoding.CategoricalMatrix` or a
    :class:`~repro.ml.sparse.FactorizedMatrix`, matching what the
    producer exported.
    """
    if isinstance(handle, FactorizedShardHandle):
        return _import_factorized(handle)
    shm = shared_memory.SharedMemory(name=handle.segment)
    codes = np.ndarray(
        (handle.n_rows, handle.n_features),
        dtype=np.int64,
        buffer=shm.buf[: handle.codes_bytes],
    )
    labels = np.ndarray(
        (handle.n_rows,),
        dtype=np.dtype(handle.labels_dtype),
        buffer=shm.buf[
            handle.codes_bytes : handle.codes_bytes + handle.labels_bytes
        ],
    )
    X = CategoricalMatrix(codes, handle.n_levels, handle.names, validate=False)
    return shm, X, labels


def export_columns(segment: str, columns: dict[str, np.ndarray]) -> ColumnsHandle:
    """Copy a dict of equal-length column arrays into a named segment.

    The serving pool's chunk transport: the parent exports a merged
    payload's columns once, hands the :class:`ColumnsHandle` over the
    worker's queue, and the worker rebuilds the dict as borrowed views.
    Ownership transfers exactly as in :func:`export_shard` — the
    producer unregisters after copy-in, the consumer (or the parent's
    death sweep) unlinks.
    """
    arrays = {
        name: np.ascontiguousarray(np.asarray(values))
        for name, values in columns.items()
    }
    lengths = {array.shape[0] for array in arrays.values()} or {0}
    if len(lengths) != 1:
        raise ValueError(
            f"columns must share one length, got {sorted(lengths)}"
        )
    for name, array in arrays.items():
        if array.ndim != 1:
            raise ValueError(
                f"column {name!r} must be 1-D, got shape {array.shape}"
            )
    handle = ColumnsHandle(
        segment=segment,
        n_rows=int(next(iter(lengths))),
        columns=tuple(
            (name, array.dtype.str) for name, array in arrays.items()
        ),
    )
    shm = shared_memory.SharedMemory(
        name=segment, create=True, size=max(1, handle.nbytes)
    )
    try:
        _copy_into(shm, arrays.values())
    finally:
        shm.close()
        resource_tracker.unregister(shm._name, "shared_memory")
    return handle


def import_columns(
    handle: ColumnsHandle,
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach a columns segment and rebuild the dict as borrowed views.

    The views die with :func:`release`; consumers that need the data
    past the current call must copy first.
    """
    shm = shared_memory.SharedMemory(name=handle.segment)
    columns: dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype in handle.columns:
        size = handle.n_rows * np.dtype(dtype).itemsize
        columns[name] = np.ndarray(
            (handle.n_rows,),
            dtype=np.dtype(dtype),
            buffer=shm.buf[offset : offset + size],
        )
        offset += size
    return shm, columns


def release(shm: shared_memory.SharedMemory) -> None:
    """Unlink an attached segment and drop this process's mapping.

    Unlink comes first so the name leaves ``/dev/shm`` immediately
    (idempotent: a segment someone else already unlinked is fine);
    ``close()`` then unmaps, invalidating any views still built over
    the segment — callers must be done with the shard's arrays (or
    have copied them) before releasing.
    """
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        pass


def sweep(segments) -> int:
    """Unlink every named segment that still exists; returns the count.

    Crash cleanup: the parent calls this with the bounded window of
    deterministic names a dead worker could have exported but never
    handed over.
    """
    removed = 0
    for name in segments:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        release(shm)
        removed += 1
    return removed
