"""Process-pool shard prefetching over shared-memory transport.

The thread tier (:class:`repro.data.PrefetchingSource`) overlaps shard
production with consumption but shares the GIL with the consumer, so
CPU-bound production (CSV parsing, per-shard joins, encoding) still
steals optimiser time.  :class:`ProcessPrefetchingSource` moves
production into worker *processes*: each worker owns a static stripe of
the pass's shard order, produces its shards from its own copy of the
wrapped source, and exports each one into a shared-memory segment
(:mod:`repro.parallel.shm`); only the small handle crosses the queue,
and the consumer rebuilds the shard as zero-copy views.

Contract, mirroring the thread tier's (enforced by
``tests/test_parallel_prefetch.py``):

- **Determinism** — shards arrive in exactly the wrapped source's
  order.  Worker ``w`` owns positions ``w, w+W, w+2W, ...`` of the
  requested order and produces them in sequence, so the parent reads
  position ``k`` from worker ``k % W``'s queue — no reorder buffer.
- **Bounded memory** — each worker's queue holds at most ``depth``
  handles, so at most ``W × depth + 1`` shard segments exist at once.
- **Clean cancellation** — abandoning the iterator unlinks the current
  segment, drains and unlinks every queued segment, and joins every
  worker before control returns; ``/dev/shm`` is left empty.
- **Worker death is survivable** — a worker that dies mid-pass
  (crash, OOM kill, injected fault) is detected, its undelivered
  segments are swept by deterministic name, and the parent produces
  the worker's remaining shards inline from the wrapped source
  (through ``retry_policy`` when given), counting
  ``parallel.prefetch.worker_deaths`` / ``fallback_shards``.  The
  pass completes with identical bytes.

The zero-copy views handed to the consumer are valid only until the
iterator advances past the shard (or closes) — the loop-body usage
every trainer and scorer in this repo follows.  Consumers that stash
shards must copy them.
"""

from __future__ import annotations

import os
import queue
import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro.data.source import FeatureSource, SourceDecorator
from repro.obs import MetricsRegistry
from repro.parallel.shm import export_shard, import_shard, release, sweep

#: How long a blocked worker/parent waits before re-checking for
#: cancellation or worker death.
_POLL_SECONDS = 0.05

#: How long cancellation waits for workers to exit before terminating.
_JOIN_SECONDS = 5.0

_SHARD = "shard"
_DONE = "done"
_ERROR = "error"

#: Environment override for the multiprocessing start method; the CI
#: process-stress job sets ``spawn`` to prove the tier does not depend
#: on fork's address-space inheritance.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def _resolve_context(start_method: str | None):
    import multiprocessing

    method = start_method or os.environ.get(START_METHOD_ENV) or None
    return multiprocessing.get_context(method)


def _offer(handoff, item, cancelled) -> bool:
    """Enqueue unless the pass is cancelled; returns False on cancel."""
    while not cancelled.is_set():
        try:
            handoff.put(item, timeout=_POLL_SECONDS)
            return True
        except queue.Full:
            continue
    return False


def _produce_worker(
    source: FeatureSource,
    indices: Sequence[int],
    handoff,
    cancelled,
    prefix: str,
    kill_after: int | None,
) -> None:
    """Worker entry point: export the assigned stripe, in order.

    Module-level so the ``spawn`` start method can pickle it.  The
    ``kill_after`` hook is the deterministic fault used by the chaos
    suite: after exporting that many shards the worker dies abruptly
    (``os._exit``) *before* creating the next segment, modelling an OOM
    kill at the point where it leaks nothing.
    """
    exported = 0
    try:
        for ordinal, index in enumerate(indices):
            if cancelled.is_set():
                return
            if kill_after is not None and exported >= kill_after:
                os._exit(3)
            X, y = source.shard(int(index))
            handle = export_shard(f"{prefix}s{ordinal}", index, X, y)
            if not _offer(handoff, (_SHARD, handle), cancelled):
                # Cancelled while blocked: the handle never reached the
                # consumer, so the segment is this worker's to reclaim.
                sweep([handle.segment])
                return
            exported += 1
        _offer(handoff, (_DONE, None), cancelled)
    # The handoff queue IS the error route: the parent re-raises this
    # in the consumer.  # repro: lint-ignore[exception-hygiene]
    except BaseException as error:
        _offer(handoff, (_ERROR, error), cancelled)


class ProcessPrefetchingSource(SourceDecorator):
    """Prefetch the wrapped source's shards on a process pool.

    Parameters
    ----------
    source:
        Any :class:`FeatureSource`.  Under the default ``fork`` start
        method workers inherit it; under ``spawn`` it must pickle.
    workers:
        Producer processes per pass.
    depth:
        Maximum handles (hence live segments) queued per worker beyond
        the one the consumer holds.
    registry:
        Metrics registry backing ``parallel.prefetch.*``: shards
        produced, consumer-wait histogram, worker deaths, and inline
        fallback shards.  ``None`` keeps a private one.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` (duck-typed)
        applied to the parent's *inline fallback* reads after a worker
        death — the worker-death recovery path is itself retryable.
    start_method:
        ``fork``/``spawn``/``forkserver``; ``None`` defers to the
        ``REPRO_MP_START_METHOD`` environment variable, then the
        platform default.

    Yielded ``(index, X, y)`` shards are zero-copy views *borrowed*
    from a shared-memory segment that is reclaimed when the consumer
    advances (or closes) the iterator — copy the arrays to keep a
    shard beyond its iteration.  Every in-tree ``FeatureSource``
    consumer already works shard-at-a-time.
    """

    def __init__(
        self,
        source: FeatureSource,
        workers: int = 2,
        depth: int = 2,
        registry: MetricsRegistry | None = None,
        retry_policy=None,
        start_method: str | None = None,
        _kill_after: dict[int, int] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        super().__init__(source)
        self.workers = workers
        self.depth = depth
        self.retry_policy = retry_policy
        self.start_method = start_method
        self._kill_after = _kill_after or {}
        self._pass_counter = 0
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._shards = self.metrics.counter("parallel.prefetch.shards")
        self._deaths = self.metrics.counter("parallel.prefetch.worker_deaths")
        self._fallbacks = self.metrics.counter(
            "parallel.prefetch.fallback_shards"
        )
        self._consumer_wait = self.metrics.histogram(
            "parallel.prefetch.consumer_wait_s"
        )

    def _fallback_shard(self, index: int):
        """Produce one shard inline after its worker died."""
        self._fallbacks.inc()
        if self.retry_policy is not None:
            return self.retry_policy.call(
                lambda: self.source.shard(index),
                registry=self.metrics,
                describe=f"fallback read of shard {index}",
            )
        return self.source.shard(index)

    def iter_shards(
        self, order: Sequence[int] | np.ndarray | None = None
    ) -> Iterator[tuple[int, "CategoricalMatrix", np.ndarray]]:  # noqa: F821
        indices = (
            list(range(self.source.n_shards))
            if order is None
            else [int(i) for i in order]
        )
        if not indices:
            return
        ctx = _resolve_context(self.start_method)
        self._pass_counter += 1
        n_workers = min(self.workers, len(indices))
        prefix = f"reprop{os.getpid()}g{self._pass_counter}"
        cancelled = ctx.Event()
        handoffs = [ctx.Queue(maxsize=self.depth) for _ in range(n_workers)]
        stripes = [indices[w::n_workers] for w in range(n_workers)]
        procs = [
            ctx.Process(
                target=_produce_worker,
                args=(
                    self.source,
                    stripes[w],
                    handoffs[w],
                    cancelled,
                    f"{prefix}w{w}",
                    self._kill_after.get(w),
                ),
                name=f"repro-pprefetch-{w}",
                daemon=False,
            )
            for w in range(n_workers)
        ]
        received = [0] * n_workers  # handles consumed per worker
        finished = [False] * n_workers  # saw _DONE, worker dead, or errored
        for proc in procs:
            proc.start()
        try:
            for position, index in enumerate(indices):
                w = position % n_workers
                if finished[w]:
                    yield (index, *self._fallback_shard(index))
                    continue
                kind, item = self._next_item(handoffs[w], procs[w])
                if kind == _ERROR:
                    finished[w] = True
                    raise item
                if kind == _DONE:
                    # Worker death (premature end of stripe): sweep the
                    # window of segments it may have exported but never
                    # delivered, then fall back inline.
                    finished[w] = True
                    self._deaths.inc()
                    self._sweep_window(f"{prefix}w{w}", received[w])
                    yield (index, *self._fallback_shard(index))
                    continue
                received[w] += 1
                segment, X, y = import_shard(item)
                self._shards.inc()
                try:
                    yield item.index, X, y
                finally:
                    release(segment)
        finally:
            cancelled.set()
            self._teardown(handoffs, procs, prefix, received)

    def _next_item(self, handoff, proc):
        """One queue read with worker-death detection.

        Returns the queued ``(kind, item)``; a worker found dead with
        an empty queue reads as a premature ``(_DONE, None)``.
        """
        wait_started = time.perf_counter()
        while True:
            try:
                item = handoff.get(timeout=_POLL_SECONDS)
                break
            except queue.Empty:
                if proc.is_alive():
                    continue
                # The feeder thread may have flushed items between our
                # last poll and the death — drain before declaring it.
                try:
                    item = handoff.get_nowait()
                    break
                except queue.Empty:
                    item = (_DONE, None)
                    break
        self._consumer_wait.observe(time.perf_counter() - wait_started)
        return item

    def _sweep_window(self, worker_prefix: str, received_count: int) -> None:
        """Unlink segments a dead worker exported but never delivered.

        Export ordinals are sequential, so everything the worker could
        have created beyond what the parent consumed lies in the window
        ``[received, received + depth + 1]``.
        """
        sweep(
            f"{worker_prefix}s{ordinal}"
            for ordinal in range(received_count, received_count + self.depth + 2)
        )

    def _teardown(self, handoffs, procs, prefix, received) -> None:
        """Drain queues, reclaim queued segments, and join every worker."""
        deadline = time.monotonic() + _JOIN_SECONDS
        for w, (handoff, proc) in enumerate(zip(handoffs, procs)):
            # Drain before joining so a worker blocked on a full queue
            # frees up and sees the cancellation promptly.
            self._drain(handoff, received, w)
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join()
                # A terminated worker may strand an exported segment —
                # sweep its undelivered window.
                self._sweep_window(f"{prefix}w{w}", received[w])
            # Items the worker flushed into the pipe on its way out
            # arrive after the join; reclaim those segments too.
            self._drain(handoff, received, w)
            handoff.close()
            handoff.join_thread()

    def _drain(self, handoff, received, w) -> None:
        """Unlink every queued-but-unconsumed shard segment."""
        while True:
            try:
                kind, item = handoff.get_nowait()
            except queue.Empty:
                return
            if kind == _SHARD:
                sweep([item.segment])
                received[w] += 1

    def __repr__(self) -> str:
        return (
            f"ProcessPrefetchingSource({self.source!r}, "
            f"workers={self.workers}, depth={self.depth})"
        )
