"""Background shard prefetching behind a bounded queue.

Shard production (CSV parsing, per-shard KFK joins, categorical
encoding) and shard consumption (FISTA gradient passes, histogram
accumulation) are serialised in a plain loop: the optimiser idles while
the next shard is read.  :class:`PrefetchingSource` overlaps the two
with one worker thread per iteration pass, pulling shards from the
wrapped source into a bounded queue while the consumer works on the
current one.

Invariants, enforced by ``tests/test_data_prefetch.py``:

- **Determinism** — shards arrive in exactly the order the wrapped
  source would have produced them, byte for byte.
- **Exception propagation** — an exception raised while producing a
  shard is re-raised in the consumer with the worker's original
  traceback attached.
- **Clean cancellation** — abandoning the iterator mid-pass (``break``,
  ``close()``, an exception in the consumer) wakes the worker, drains
  the queue, and joins the thread before control returns; no daemon
  threads outlive the pass.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro.data.source import FeatureSource, SourceDecorator
from repro.obs import MetricsRegistry

#: How long a blocked worker waits before re-checking for cancellation.
_POLL_SECONDS = 0.05

_DONE = "done"
_SHARD = "shard"
_ERROR = "error"


class PrefetchingSource(SourceDecorator):
    """Prefetch the wrapped source's shards on a background thread.

    Parameters
    ----------
    source:
        Any :class:`FeatureSource`.
    depth:
        Maximum shards resident in the hand-off queue (beyond the one
        the consumer holds).  Peak memory grows by ``depth`` shards —
        keep it small; the default of 2 already hides production
        latency behind consumption.
    registry:
        Metrics registry backing the ``data.prefetch.*`` metrics:
        queue occupancy (gauge with high-water mark), producer stall
        seconds (time the worker spent blocked on a full queue) and the
        consumer-wait latency histogram.  ``None`` keeps a private one.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` (or anything
        with its ``call`` shape) applied per shard inside the worker: a
        transient producer failure backs off and retries on the worker
        thread instead of tearing down the pass.  Non-retryable errors
        (and exhausted retries) still propagate to the consumer with
        the original traceback.  Duck-typed to keep ``repro.data``
        import-independent of ``repro.resilience``.
    """

    def __init__(
        self,
        source: FeatureSource,
        depth: int = 2,
        registry: MetricsRegistry | None = None,
        retry_policy=None,
    ):
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        super().__init__(source)
        self.depth = depth
        self.retry_policy = retry_policy
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._queue_depth = self.metrics.gauge("data.prefetch.queue_depth")
        self._shards = self.metrics.counter("data.prefetch.shards")
        self._producer_stall = self.metrics.counter(
            "data.prefetch.producer_stall_s"
        )
        self._consumer_wait = self.metrics.histogram(
            "data.prefetch.consumer_wait_s"
        )

    def _produce_shards(
        self, order: Sequence[int] | np.ndarray | None
    ) -> Iterator[tuple[int, "CategoricalMatrix", np.ndarray]]:  # noqa: F821
        """The worker's view of the pass: per-shard, retried reads."""
        if self.retry_policy is None:
            yield from self.source.iter_shards(order)
            return
        # Per-shard random access instead of the wrapped generator, so
        # one failed read retries alone — the shards already handed off
        # are not re-produced and ordering is preserved.
        indices = range(self.source.n_shards) if order is None else order
        for index in indices:
            index = int(index)
            X, y = self.retry_policy.call(
                lambda i=index: self.source.shard(i),
                registry=self.metrics,
                describe=f"prefetch read of shard {index}",
            )
            yield index, X, y

    def iter_shards(
        self, order: Sequence[int] | np.ndarray | None = None
    ) -> Iterator[tuple[int, "CategoricalMatrix", np.ndarray]]:  # noqa: F821
        handoff: queue.Queue = queue.Queue(maxsize=self.depth)
        cancelled = threading.Event()

        def produce() -> None:
            shard_iter = self._produce_shards(order)
            try:
                for item in shard_iter:
                    # Only time blocked on a full queue counts as stall
                    # — the consumer is the bottleneck and prefetching
                    # is doing its job.  An uncontended put accrues 0.
                    if not _put(
                        handoff,
                        (_SHARD, item),
                        cancelled,
                        stall=self._producer_stall,
                    ):
                        return
                    self._shards.inc()
                    self._queue_depth.set(handoff.qsize())
                _put(handoff, (_DONE, None), cancelled)
            # The handoff queue IS the error route: the consumer
            # re-raises this exception from iter_shards, so the
            # worker must park it rather than raise into a dead
            # thread.  # repro: lint-ignore[exception-hygiene]
            except BaseException as error:
                _put(handoff, (_ERROR, error), cancelled)
            finally:
                # Cancellation must release the wrapped generator's
                # resources (open CSV handles, spill entries): closing
                # the worker's iterator propagates GeneratorExit into
                # `source.iter_shards` even on the non-retry path.
                shard_iter.close()

        worker = threading.Thread(
            target=produce, name="repro-prefetch", daemon=False
        )
        worker.start()
        try:
            while True:
                wait_started = time.perf_counter()
                kind, item = handoff.get()
                self._consumer_wait.observe(time.perf_counter() - wait_started)
                self._queue_depth.set(handoff.qsize())
                if kind == _DONE:
                    return
                if kind == _ERROR:
                    # ``raise item`` keeps the worker's traceback on the
                    # exception object, so the consumer sees the real
                    # failure site, not this re-raise.
                    raise item
                yield item
        finally:
            cancelled.set()
            # A worker blocked on a full queue re-checks `cancelled`
            # every poll interval; draining just speeds that up.
            while worker.is_alive():
                try:
                    handoff.get_nowait()
                except queue.Empty:
                    pass
                worker.join(timeout=_POLL_SECONDS)
            worker.join()

    def __repr__(self) -> str:
        return f"PrefetchingSource({self.source!r}, depth={self.depth})"


def _put(
    handoff: queue.Queue,
    item,
    cancelled: threading.Event,
    stall=None,
) -> bool:
    """Enqueue unless the pass is cancelled; returns False on cancel.

    Only time spent blocked on a full queue accrues to ``stall`` (a
    counter, when given): the first put attempt is free, so a consumer
    that always keeps up reads ~0 producer stall.
    """
    try:
        handoff.put_nowait(item)
        return True
    except queue.Full:
        pass
    blocked_started = time.perf_counter()
    try:
        while not cancelled.is_set():
            try:
                handoff.put(item, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False
    finally:
        if stall is not None:
            stall.inc(time.perf_counter() - blocked_started)
