"""Declarative recipes for building per-split :class:`FeatureSource`\\ s.

The experiment runner, the CLI and the benchmarks all need the same
decision made in the same way: given a dataset and a strategy, should a
split's features be one resident matrix or a stream of bounded shards,
and which decorators wrap the result?  :class:`SourceSpec` captures
that choice as data — ``SourceSpec()`` is the in-memory path,
``SourceSpec(shard_rows=...)`` (or ``n_shards=...``) the out-of-core
one, ``prefetch``/``spill_cache`` layer the decorators — so
``run_experiment(source=spec)`` replaces the two hand-rolled runner
functions PR 4 left behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.data.prefetch import PrefetchingSource
from repro.data.source import FeatureSource, MatrixSource
from repro.data.spill import SpillCacheSource
from repro.obs import MetricsRegistry

#: The split names every dataset carries, in scoring order.
SPLITS = ("train", "validation", "test")


@dataclass(frozen=True)
class SourceSpec:
    """How to turn ``(dataset, strategy, split)`` into a FeatureSource.

    Parameters
    ----------
    shard_rows, n_shards:
        Shard layout for the out-of-core path; mutually exclusive.
        Leaving both unset selects the in-memory path: the strategy's
        matrices are materialised once and each split is a single
        resident shard.
    prefetch:
        When set, wrap each source in a :class:`PrefetchingSource` with
        this queue depth.
    spill_cache:
        ``False`` (default) for no cache, ``True`` for a
        :class:`SpillCacheSource` in a private temporary directory, or
        an explicit directory path.  Spill before prefetch, so the
        background thread reads through the cache.
    engine:
        Execution engine for the streams and models this spec feeds.
        ``"factorized"`` makes the streaming path assemble
        :class:`~repro.ml.sparse.FactorizedMatrix` shards (the KFK join
        stays factorized end to end); the in-memory path is unaffected
        by the spec (models factorize an already-gathered matrix into
        the degenerate all-fact form, bit-identical to implicit).
    """

    shard_rows: int | None = None
    n_shards: int | None = None
    prefetch: int | None = None
    spill_cache: bool | str | Path = False
    engine: str = "implicit"

    def __post_init__(self) -> None:
        from repro.ml.sparse import check_engine

        check_engine(self.engine)
        if self.shard_rows is not None and self.n_shards is not None:
            raise ValueError(
                "shard_rows and n_shards are two ways to lay out the same "
                "shards; pass exactly one"
            )
        if self.engine == "factorized" and self.spill_cache:
            raise ValueError(
                "spill_cache stores gathered code tables and cannot hold "
                "factorized shards; drop spill_cache or use engine='implicit'"
            )
        for name in ("shard_rows", "n_shards", "prefetch"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def streaming(self) -> bool:
        """Whether this spec selects the out-of-core shard path."""
        return self.shard_rows is not None or self.n_shards is not None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def split_sources(
        self,
        dataset,
        strategy,
        splits: tuple[str, ...] = SPLITS,
        registry: MetricsRegistry | None = None,
    ) -> dict[str, FeatureSource]:
        """Build one decorated source per requested split.

        The in-memory path materialises the strategy's matrices once
        (one join shared by all splits, as the tuned pipeline does);
        the streaming path builds one shard stream per split, so no
        split is ever resident whole.  Callers own the sources and
        should ``close()`` them when done (spill caches hold disk).

        ``registry`` threads one metrics registry through the encoder
        and every decorator (the experiment runner passes the
        process-wide one, so ``repro fit --telemetry`` reports
        ``data.*`` metrics); ``None`` keeps each component's private
        default.
        """
        if self.streaming:
            from repro.data.encoder import ShardEncoder
            from repro.streaming import ShardedDataset, StreamingMatrices

            # One encoder across the splits: they share the schema, so
            # each dimension's index is built once per experiment, not
            # once per split.
            encoder = ShardEncoder(dataset.schema, strategy, registry=registry)
            sources = {
                split: StreamingMatrices(
                    ShardedDataset.from_split(
                        dataset,
                        shard_rows=self.shard_rows,
                        n_shards=self.n_shards,
                        split=split,
                    ),
                    strategy,
                    encoder=encoder,
                    engine=self.engine,
                )
                for split in splits
            }
        else:
            matrices = strategy.matrices(dataset)
            blocks = {
                "train": (matrices.X_train, matrices.y_train),
                "validation": (matrices.X_validation, matrices.y_validation),
                "test": (matrices.X_test, matrices.y_test),
            }
            sources = {split: MatrixSource(*blocks[split]) for split in splits}
        return {
            split: self.decorate(source, label=split, registry=registry)
            for split, source in sources.items()
        }

    def build(self, dataset, strategy, split: str = "train") -> FeatureSource:
        """Build one split's source (see :meth:`split_sources`)."""
        return self.split_sources(dataset, strategy, splits=(split,))[split]

    def decorate(
        self,
        source: FeatureSource,
        label: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> FeatureSource:
        """Wrap a source with this spec's decorators (spill, then prefetch).

        ``label`` namespaces an explicit ``spill_cache`` directory (one
        subdirectory per split), so several sources built from one spec
        never collide on shard file names.
        """
        if self.spill_cache:
            if self.spill_cache is True:
                directory = None
            else:
                directory = Path(self.spill_cache)
                if label is not None:
                    directory = directory / label
            source = SpillCacheSource(
                source, directory=directory, registry=registry
            )
        if self.prefetch is not None:
            source = PrefetchingSource(
                source, depth=self.prefetch, registry=registry
            )
        return source

    def describe(self) -> dict:
        """The spec as flat result metadata (for ``RunResult.best_params``)."""
        described: dict = {"streaming": self.streaming}
        if self.engine != "implicit":
            described["engine"] = self.engine
        if self.prefetch is not None:
            described["prefetch"] = self.prefetch
        if self.spill_cache:
            described["spill_cache"] = (
                True if self.spill_cache is True else str(self.spill_cache)
            )
        return described
