"""A disk-spilling LRU cache of encoded shards.

Multi-pass consumers — exact FISTA makes one full pass over the shards
*per iteration* — force out-of-core sources to re-produce every shard
hundreds of times.  For a CSV-backed source each production is a seek,
a text parse, a per-column domain encode and a KFK join; all of it
yields the same bytes every time.  :class:`SpillCacheSource` intercepts
:meth:`shard` and keeps each shard's encoded form — the integer code
matrix and the label vector, exactly the arrays training consumes — in
an ``.npz`` file, bounded by an LRU byte budget.  Re-reads become one
``np.load`` instead of a re-parse and re-join, while peak *memory*
stays one shard: the cache spills to disk, not to RAM.

The decorator contract holds: cached shards are byte-identical to what
the wrapped source produces (``tests/test_data_spill.py`` asserts it),
so training results cannot depend on whether a shard came from the
cache or the source.

Cache entries are crash-safe and self-verifying: each ``.npz`` is
written to a temp file and ``os.replace``-d into place (a mid-write
kill leaves no torn entry), and carries a CRC-32 of its arrays.  A
corrupt entry — torn write survived from an older format, bit rot, an
injected ``corrupt_spill`` fault — fails verification on load and is
transparently dropped and re-encoded from the wrapped source instead
of crashing the pass.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.data.source import FeatureSource, SourceDecorator
from repro.errors import SpillCorruptionError
from repro.obs import MetricsRegistry


def _checksum(codes: np.ndarray, y: np.ndarray) -> int:
    """CRC-32 over a shard's exact array bytes (shape/dtype included)."""
    crc = zlib.crc32(str((codes.shape, str(codes.dtype))).encode())
    crc = zlib.crc32(np.ascontiguousarray(codes).tobytes(), crc)
    crc = zlib.crc32(str((y.shape, str(y.dtype))).encode(), crc)
    return zlib.crc32(np.ascontiguousarray(y).tobytes(), crc)


@dataclass
class SpillStats:
    """Hit/miss/eviction accounting for one spill cache.

    A point-in-time snapshot view over the cache's registry-backed
    metrics (``data.spill.*``).  ``spilled_bytes`` is gauge-backed — it
    falls when evictions remove files from disk.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spilled_bytes: int = 0
    corruptions: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"spill cache: {self.hits} hits / {self.misses} misses, "
            f"{self.evictions} evictions, {self.spilled_bytes} bytes on disk"
        )


class SpillCacheSource(SourceDecorator):
    """Cache the wrapped source's encoded shards on disk, LRU-bounded.

    Parameters
    ----------
    source:
        Any :class:`FeatureSource`.  Wrapping an already-cheap source
        (an in-memory :class:`MatrixSource`) is allowed and harmless —
        single-shard sources pass straight through uncached, since the
        one shard is already resident — while the win comes from
        multi-shard sources whose :meth:`shard` re-reads and re-encodes
        external data.
    directory:
        Where shard files live.  ``None`` creates a private temporary
        directory that :meth:`close` deletes; an explicit directory is
        created if needed and left in place (only the shard files this
        cache wrote are removed on close).
    max_bytes:
        LRU byte budget for the on-disk cache; ``None`` means
        unbounded.  Eviction is by least-recent *use*, so a sequential
        multi-pass workload keeps the hottest tail resident.
    registry:
        Metrics registry backing the ``data.spill.*`` metrics.
        ``None`` keeps a private one (exact per-instance stats).
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` (or anything
        with its ``call`` shape) applied to the wrapped source's
        ``shard`` reads, so a transient producer failure costs a
        bounded backoff instead of the pass.  Duck-typed to keep
        ``repro.data`` import-independent of ``repro.resilience``.
    """

    def __init__(
        self,
        source: FeatureSource,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy=None,
    ):
        super().__init__(source)
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._owns_directory = directory is None
        if directory is None:
            self.directory = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        else:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._hits = self.metrics.counter("data.spill.hits")
        self._misses = self.metrics.counter("data.spill.misses")
        self._evictions = self.metrics.counter("data.spill.evictions")
        self._spilled_bytes = self.metrics.gauge("data.spill.bytes")
        self._corruptions = self.metrics.counter("data.spill.corruptions")
        self.retry_policy = retry_policy
        self._entries: OrderedDict[int, int] = OrderedDict()  # index -> bytes
        self._closed = False

    @property
    def stats(self) -> SpillStats:
        """Point-in-time snapshot of the registry-backed metrics."""
        return SpillStats(
            hits=self._hits.value,
            misses=self._misses.value,
            evictions=self._evictions.value,
            spilled_bytes=int(self._spilled_bytes.value),
            corruptions=self._corruptions.value,
        )

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------
    def _path(self, index: int) -> Path:
        return self.directory / f"shard-{index:08d}.npz"

    def shard(self, index: int):
        if self._closed:
            raise ValueError("cannot read from a closed SpillCacheSource")
        if self.source.n_shards <= 1:
            # A single-shard source is already its own best cache (the
            # in-memory adapters and StreamingMatrices both keep the one
            # shard resident, and multi-pass consumers key encoding
            # memos on object identity); spilling it would replace a
            # resident object with a disk re-load per pass.
            return self.source.shard(index)
        if index in self._entries:
            self._entries.move_to_end(index)
            try:
                loaded = self._load(index)
            except SpillCorruptionError:
                # The entry is damaged (torn write survived a crash,
                # bit rot, injected corruption).  Drop it and fall
                # through to the miss path: the wrapped source is the
                # durable truth, so re-encoding restores the exact
                # bytes the cache should have held.
                self._corruptions.inc()
                self._drop(index)
            else:
                self._hits.inc()
                return loaded
        self._misses.inc()
        X, y = self._produce(index)
        self._store(index, X, y)
        return X, y

    def _produce(self, index: int):
        """Read a shard from the wrapped source, retried when configured."""
        if self.retry_policy is None:
            return self.source.shard(index)
        return self.retry_policy.call(
            lambda: self.source.shard(index),
            registry=self.metrics,
            describe=f"spill-cache source read of shard {index}",
        )

    def _drop(self, index: int) -> None:
        """Remove one entry (and its file) from the cache."""
        size = self._entries.pop(index, 0)
        self._path(index).unlink(missing_ok=True)
        self._spilled_bytes.add(-size)

    def _load(self, index: int):
        # Local import: keeps repro.data.source importable from within
        # repro.ml's own module initialisation (see repro.data.__init__).
        from repro.ml.encoding import CategoricalMatrix

        path = self._path(index)
        try:
            with np.load(path) as archive:
                codes = archive["codes"]
                y = archive["y"]
                stored = int(archive["crc"][()]) if "crc" in archive else None
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as error:
            raise SpillCorruptionError(
                f"{path}: spill entry unreadable ({error})"
            ) from error
        if stored is None or _checksum(codes, y) != stored:
            raise SpillCorruptionError(
                f"{path}: spill entry failed checksum verification"
            )
        # Codes round-trip exactly and were validated when the source
        # produced them, so skip the range re-scan.
        X = CategoricalMatrix(
            codes, self.n_levels, self.feature_names, validate=False
        )
        return X, y

    def _store(self, index: int, X, y) -> None:
        path = self._path(index)
        y = np.asarray(y)
        # Temp file in the cache directory + os.replace: a kill at any
        # instant leaves either no entry or a complete one, never a
        # torn .npz that np.load chokes on next pass.
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    codes=X.codes,
                    y=y,
                    crc=np.uint32(_checksum(X.codes, y)),
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        size = path.stat().st_size
        self._entries[index] = size
        self._spilled_bytes.add(size)
        if self.max_bytes is None:
            return
        while (
            sum(self._entries.values()) > self.max_bytes
            and len(self._entries) > 1
        ):
            self._evict()
        # A budget smaller than a single shard disables caching rather
        # than erroring: the freshly written entry is dropped too.
        if self._entries and sum(self._entries.values()) > self.max_bytes:
            self._evict()

    def _evict(self) -> None:
        index, size = self._entries.popitem(last=False)
        self._path(index).unlink(missing_ok=True)
        self._evictions.inc()
        self._spilled_bytes.add(-size)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of shards currently resident on disk."""
        return len(self._entries)

    def close(self) -> None:
        """Drop the cached files (and the owned directory), close inner."""
        if not self._closed:
            self._closed = True
            for index in list(self._entries):
                self._path(index).unlink(missing_ok=True)
            self._entries.clear()
            if self._owns_directory:
                shutil.rmtree(self.directory, ignore_errors=True)
        self.source.close()

    def __repr__(self) -> str:
        return (
            f"SpillCacheSource({self.source!r}, dir={str(self.directory)!r}, "
            f"{self.stats})"
        )
