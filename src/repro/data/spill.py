"""A disk-spilling LRU cache of encoded shards.

Multi-pass consumers — exact FISTA makes one full pass over the shards
*per iteration* — force out-of-core sources to re-produce every shard
hundreds of times.  For a CSV-backed source each production is a seek,
a text parse, a per-column domain encode and a KFK join; all of it
yields the same bytes every time.  :class:`SpillCacheSource` intercepts
:meth:`shard` and keeps each shard's encoded form — the integer code
matrix and the label vector, exactly the arrays training consumes — in
an ``.npz`` file, bounded by an LRU byte budget.  Re-reads become one
``np.load`` instead of a re-parse and re-join, while peak *memory*
stays one shard: the cache spills to disk, not to RAM.

The decorator contract holds: cached shards are byte-identical to what
the wrapped source produces (``tests/test_data_spill.py`` asserts it),
so training results cannot depend on whether a shard came from the
cache or the source.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.data.source import FeatureSource, SourceDecorator
from repro.obs import MetricsRegistry


@dataclass
class SpillStats:
    """Hit/miss/eviction accounting for one spill cache.

    A point-in-time snapshot view over the cache's registry-backed
    metrics (``data.spill.*``).  ``spilled_bytes`` is gauge-backed — it
    falls when evictions remove files from disk.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spilled_bytes: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"spill cache: {self.hits} hits / {self.misses} misses, "
            f"{self.evictions} evictions, {self.spilled_bytes} bytes on disk"
        )


class SpillCacheSource(SourceDecorator):
    """Cache the wrapped source's encoded shards on disk, LRU-bounded.

    Parameters
    ----------
    source:
        Any :class:`FeatureSource`.  Wrapping an already-cheap source
        (an in-memory :class:`MatrixSource`) is allowed and harmless —
        single-shard sources pass straight through uncached, since the
        one shard is already resident — while the win comes from
        multi-shard sources whose :meth:`shard` re-reads and re-encodes
        external data.
    directory:
        Where shard files live.  ``None`` creates a private temporary
        directory that :meth:`close` deletes; an explicit directory is
        created if needed and left in place (only the shard files this
        cache wrote are removed on close).
    max_bytes:
        LRU byte budget for the on-disk cache; ``None`` means
        unbounded.  Eviction is by least-recent *use*, so a sequential
        multi-pass workload keeps the hottest tail resident.
    registry:
        Metrics registry backing the ``data.spill.*`` metrics.
        ``None`` keeps a private one (exact per-instance stats).
    """

    def __init__(
        self,
        source: FeatureSource,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        super().__init__(source)
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._owns_directory = directory is None
        if directory is None:
            self.directory = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        else:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._hits = self.metrics.counter("data.spill.hits")
        self._misses = self.metrics.counter("data.spill.misses")
        self._evictions = self.metrics.counter("data.spill.evictions")
        self._spilled_bytes = self.metrics.gauge("data.spill.bytes")
        self._entries: OrderedDict[int, int] = OrderedDict()  # index -> bytes
        self._closed = False

    @property
    def stats(self) -> SpillStats:
        """Point-in-time snapshot of the registry-backed metrics."""
        return SpillStats(
            hits=self._hits.value,
            misses=self._misses.value,
            evictions=self._evictions.value,
            spilled_bytes=int(self._spilled_bytes.value),
        )

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------
    def _path(self, index: int) -> Path:
        return self.directory / f"shard-{index:08d}.npz"

    def shard(self, index: int):
        if self._closed:
            raise ValueError("cannot read from a closed SpillCacheSource")
        if self.source.n_shards <= 1:
            # A single-shard source is already its own best cache (the
            # in-memory adapters and StreamingMatrices both keep the one
            # shard resident, and multi-pass consumers key encoding
            # memos on object identity); spilling it would replace a
            # resident object with a disk re-load per pass.
            return self.source.shard(index)
        if index in self._entries:
            self._entries.move_to_end(index)
            self._hits.inc()
            return self._load(index)
        self._misses.inc()
        X, y = self.source.shard(index)
        self._store(index, X, y)
        return X, y

    def _load(self, index: int):
        # Local import: keeps repro.data.source importable from within
        # repro.ml's own module initialisation (see repro.data.__init__).
        from repro.ml.encoding import CategoricalMatrix

        with np.load(self._path(index)) as archive:
            codes = archive["codes"]
            y = archive["y"]
        # Codes round-trip exactly and were validated when the source
        # produced them, so skip the range re-scan.
        X = CategoricalMatrix(
            codes, self.n_levels, self.feature_names, validate=False
        )
        return X, y

    def _store(self, index: int, X, y) -> None:
        path = self._path(index)
        with path.open("wb") as handle:
            np.savez(handle, codes=X.codes, y=np.asarray(y))
        size = path.stat().st_size
        self._entries[index] = size
        self._spilled_bytes.add(size)
        if self.max_bytes is None:
            return
        while (
            sum(self._entries.values()) > self.max_bytes
            and len(self._entries) > 1
        ):
            self._evict()
        # A budget smaller than a single shard disables caching rather
        # than erroring: the freshly written entry is dropped too.
        if self._entries and sum(self._entries.values()) > self.max_bytes:
            self._evict()

    def _evict(self) -> None:
        index, size = self._entries.popitem(last=False)
        self._path(index).unlink(missing_ok=True)
        self._evictions.inc()
        self._spilled_bytes.add(-size)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of shards currently resident on disk."""
        return len(self._entries)

    def close(self) -> None:
        """Drop the cached files (and the owned directory), close inner."""
        if not self._closed:
            self._closed = True
            for index in list(self._entries):
                self._path(index).unlink(missing_ok=True)
            self._entries.clear()
            if self._owns_directory:
                shutil.rmtree(self.directory, ignore_errors=True)
        self.source.close()

    def __repr__(self) -> str:
        return (
            f"SpillCacheSource({self.source!r}, dir={str(self.directory)!r}, "
            f"{self.stats})"
        )
