"""The :class:`FeatureSource` protocol: one shard-oriented access path.

Every consumer of training data in this repo — the exact streaming
FISTA in :mod:`repro.ml.linear`, the epoch loops of
:class:`~repro.streaming.trainer.StreamingTrainer`, the count
accumulators of :class:`~repro.ml.naive_bayes.CategoricalNB`, the
histogram tree builder, the experiment runner and the benchmarks —
consumes the same thing: encoded ``(X, y)`` shards in a stable order
plus the schema/domain metadata needed to size model state up front.
:class:`FeatureSource` is that contract, stated once:

- **Shape without data**: ``n_rows``, ``n_shards``, ``shard_rows``,
  ``feature_names``, ``n_levels``, ``n_features``, ``onehot_width`` and
  ``n_classes`` are all known before any shard is read.
- **Random access**: ``shard(i)`` materialises shard ``i``'s
  ``(CategoricalMatrix, labels)`` pair; shards are deterministic and
  re-readable, which is what lets exact FISTA make one pass per
  iteration and lets decorators cache or prefetch without changing
  results.
- **Iteration**: ``iter_shards(order)`` yields ``(index, X, y)``
  triples (optionally reordered), ``__iter__`` yields ``(X, y)`` pairs
  in stable order, and both are re-iterable.
- **Lifecycle**: sources holding external resources (spill caches)
  release them in ``close()``; every source is a context manager.

Concrete sources: :class:`MatrixSource` here (one in-memory matrix,
optionally sliced into bounded shards),
:class:`~repro.streaming.matrices.StreamingMatrices` (per-shard KFK
join + encoding over any :class:`~repro.streaming.shards.ShardedDataset`
— splits, full tables, scenario populations, chunked CSVs).  Composable
decorators: :class:`~repro.data.prefetch.PrefetchingSource` and
:class:`~repro.data.spill.SpillCacheSource`.

This module deliberately imports nothing beyond numpy so that any layer
of the package (including :mod:`repro.ml` itself) can depend on it
without import cycles.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np


class FeatureSource:
    """Base class of the shard-oriented data-access protocol.

    Subclasses provide the metadata attributes (``feature_names``,
    ``n_levels``, ``n_rows``, ``n_shards``, ``n_classes``) and
    :meth:`shard`; iteration, label accumulation and lifecycle hooks
    come for free and may be overridden when a source has a cheaper
    path (e.g. a sequential CSV scanner, or labels that skip the join).
    """

    #: Star schema behind the source, when there is one (``None`` for
    #: bare in-memory matrices).
    schema = None

    # ------------------------------------------------------------------
    # Shape (known without reading any shard)
    # ------------------------------------------------------------------
    feature_names: tuple[str, ...]
    n_levels: tuple[int, ...]

    @property
    def n_rows(self) -> int:
        """Total examples across all shards."""
        raise NotImplementedError

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        raise NotImplementedError

    @property
    def shard_rows(self) -> int:
        """Upper bound on rows per shard (resolved, not the request)."""
        if self.n_shards <= 1:
            return self.n_rows
        return -(-self.n_rows // self.n_shards)

    @property
    def n_features(self) -> int:
        """Number of categorical feature columns."""
        return len(self.feature_names)

    @property
    def onehot_width(self) -> int:
        """Width of the (never materialised) one-hot encoding."""
        return int(sum(self.n_levels))

    @property
    def n_classes(self) -> int:
        """Upper bound on the number of target classes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def shard(self, index: int) -> tuple["CategoricalMatrix", np.ndarray]:  # noqa: F821
        """The encoded ``(X, y)`` block of one shard, by stable index."""
        raise NotImplementedError

    def iter_shards(
        self, order: Sequence[int] | np.ndarray | None = None
    ) -> Iterator[tuple[int, "CategoricalMatrix", np.ndarray]]:  # noqa: F821
        """Iterate ``(index, X, y)`` triples, optionally reordered."""
        indices = range(self.n_shards) if order is None else order
        for index in indices:
            X, y = self.shard(int(index))
            yield int(index), X, y

    def __iter__(self) -> Iterator[tuple["CategoricalMatrix", np.ndarray]]:  # noqa: F821
        """Stable-order iteration over ``(X, y)`` pairs (re-iterable)."""
        for _, X, y in self.iter_shards():
            yield X, y

    def labels(self) -> np.ndarray:
        """All labels in stable shard order (one small array)."""
        parts = [y for _, _, y in self.iter_shards()]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release any resources the source holds (default: none)."""

    def __enter__(self) -> "FeatureSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SourceDecorator(FeatureSource):
    """A :class:`FeatureSource` wrapping another, delegating metadata.

    Decorators change *how* shards are produced (prefetched in the
    background, cached on disk) but never *what* they contain: the
    contract — enforced by ``tests/test_data_source.py`` — is that a
    decorated source yields byte-identical shards in the same order as
    the source it wraps.
    """

    def __init__(self, source: FeatureSource):
        self.source = source

    @property
    def schema(self):
        return self.source.schema

    @property
    def feature_names(self) -> tuple[str, ...]:
        return tuple(self.source.feature_names)

    @property
    def n_levels(self) -> tuple[int, ...]:
        return tuple(self.source.n_levels)

    @property
    def n_rows(self) -> int:
        return self.source.n_rows

    @property
    def n_shards(self) -> int:
        return self.source.n_shards

    @property
    def shard_rows(self) -> int:
        return self.source.shard_rows

    @property
    def n_classes(self) -> int:
        return self.source.n_classes

    def shard(self, index: int):
        return self.source.shard(index)

    def labels(self) -> np.ndarray:
        # Sources often have a label path that skips the join/encode
        # entirely; always delegate rather than re-deriving from shards.
        return self.source.labels()

    def close(self) -> None:
        self.source.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.source!r})"


class MatrixSource(FeatureSource):
    """Adapt one in-memory ``(X, y)`` pair to the shard protocol.

    With ``shard_rows=None`` (the default) the matrix is a single
    shard, and — crucially for the equivalence contract — every
    iteration yields the *same* matrix object, so per-object encoding
    memos (:class:`repro.ml.linear.logistic._EncodingMemo`) hit on each
    FISTA pass exactly as the pre-protocol ``fit`` did.  With a bound,
    the matrix is cut into contiguous row blocks once, up front (the
    blocks are small index copies of an already-resident matrix).
    """

    def __init__(self, X, y, shard_rows: int | None = None):
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got {y.ndim}-D")
        if y.shape[0] != X.n_rows:
            raise ValueError(
                f"X has {X.n_rows} rows but y has {y.shape[0]} labels"
            )
        if shard_rows is not None and shard_rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")
        self.X = X
        self.y = y
        self.feature_names = tuple(X.names)
        self.n_levels = tuple(X.n_levels)
        if shard_rows is None or shard_rows >= X.n_rows:
            self._shard_rows = X.n_rows
            self._shards = [(X, y)] if X.n_rows else []
        else:
            self._shard_rows = shard_rows
            self._shards = [
                (
                    X.take_rows(np.arange(start, min(start + shard_rows, X.n_rows))),
                    y[start : start + shard_rows],
                )
                for start in range(0, X.n_rows, shard_rows)
            ]

    @property
    def n_rows(self) -> int:
        return self.X.n_rows

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_rows(self) -> int:
        """The actual bound: the requested slice size, not an average.

        The base-class estimate (``ceil(n_rows / n_shards)``) would
        under-report whenever the final shard runs short — e.g. 30 rows
        at ``shard_rows=25`` slices ``[25, 5]``, whose true bound is 25.
        """
        return self._shard_rows

    @property
    def n_classes(self) -> int:
        if self.y.size == 0:
            return 2
        return max(int(self.y.max()) + 1, 2)

    def shard(self, index: int):
        if not 0 <= index < len(self._shards):
            raise IndexError(
                f"shard index {index} out of range for {len(self._shards)} shards"
            )
        return self._shards[index]

    def labels(self) -> np.ndarray:
        return self.y

    def __repr__(self) -> str:
        return (
            f"MatrixSource(n_rows={self.n_rows}, n_shards={self.n_shards}, "
            f"d={self.n_features})"
        )


def source_accuracy(model, source: FeatureSource) -> float:
    """Accuracy of ``model.predict`` over a source, shard by shard.

    The one scoring loop shared by :class:`StreamingTrainer.score` and
    the experiment runner's split scoring: hits accumulate per shard, so
    evaluation has the same bounded footprint as training.
    """
    hits = 0
    total = 0
    for _, X, y in source.iter_shards():
        hits += int(np.sum(model.predict(X) == y))
        total += y.size
    if total == 0:
        raise ValueError("cannot score an empty source")
    return hits / total
