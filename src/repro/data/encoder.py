"""The one encode path from fact rows to feature matrices.

Every consumer that turns raw fact rows into a strategy's
:class:`~repro.ml.encoding.CategoricalMatrix` — the serving layer per
micro-batch, the streaming layer per shard — does the same work:
resolve each joined dimension's foreign-key codes to dimension rows,
gather the foreign-feature code columns, and stack them with the fact
features in strategy order.  :class:`ShardEncoder` is that path, stated
once and shared:

- :class:`repro.serving.FeatureService` *is* a ``ShardEncoder`` (it
  subclasses it, adding nothing but serving docs), so the request path
  and the training path cannot drift apart.
- :class:`repro.streaming.StreamingMatrices` encodes every shard
  through one, so out-of-core training reuses the same cached
  dimension indexes a server would — each shard costs O(1) numpy
  gathers per joined dimension instead of a fresh hash join.

Correctness notes: the gather-based assembly is byte-identical to the
offline ``kfk_join`` + project path (``tests/test_serving_feature_service.py``
and the streaming equivalence suite both assert it), dangling foreign
keys raise :class:`~repro.errors.ReferentialIntegrityError` through
:func:`~repro.relational.join.resolve_dimension_rows` exactly as the
join would, and dimensions the strategy avoids are never touched — the
paper's NoJoin payoff holds on every path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import SchemaError
from repro.ml.encoding import CategoricalMatrix, check_code_ranges
from repro.ml.sparse import FactorizedGroup, FactorizedMatrix
from repro.obs import MetricsRegistry, trace
from repro.relational.join import dimension_row_index, resolve_dimension_rows
from repro.relational.schema import StarSchema
from repro.relational.table import Table


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for the dimension-index cache.

    A point-in-time snapshot view over the cache's registry-backed
    counters (``data.dim_cache.*``) — the cache does not keep a second
    set of books.  ``builds`` counts actual index constructions; under
    concurrent access it can be smaller than ``misses`` because racing
    threads that miss on the same cold dimension share one build.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    builds: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (fields plus derived rates)."""
        return {
            **asdict(self),
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%}), {self.evictions} evictions"
        )


@dataclass
class _DimensionIndex:
    """Precomputed lookup state for one joined dimension."""

    row_of_code: np.ndarray
    feature_codes: dict[str, np.ndarray]


class DimensionIndexCache:
    """A thread-safe LRU cache of per-dimension join indexes.

    Capacity is bounded so a server fronting a schema with many (or
    large) dimensions can cap resident index memory; entries rebuild
    transparently on re-access.  With the default capacity of 8 every
    dimension of the paper's seven datasets stays resident and the cache
    degenerates to "compute once".

    Any number of threads may call :meth:`get` concurrently.  The LRU
    map and statistics sit behind one lock; each cold dimension
    additionally gets a per-entry *build lock*, so when several request
    threads race on the same unbuilt dimension exactly one of them
    builds the index (outside the main lock — a slow build never blocks
    hits on other dimensions) and the rest wait for it and share the
    result.  Entries are immutable once published, so an entry evicted
    while another thread still gathers from it stays valid.
    """

    def __init__(
        self,
        schema: StarSchema,
        capacity: int = 8,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.schema = schema
        self.capacity = capacity
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._hits = self.metrics.counter("data.dim_cache.hits")
        self._misses = self.metrics.counter("data.dim_cache.misses")
        self._evictions = self.metrics.counter("data.dim_cache.evictions")
        self._builds = self.metrics.counter("data.dim_cache.builds")
        self._build_seconds = self.metrics.histogram("data.dim_cache.build_s")
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _DimensionIndex] = OrderedDict()
        self._build_locks: dict[str, threading.Lock] = {}

    @property
    def stats(self) -> CacheStats:
        """Point-in-time snapshot of the registry-backed counters."""
        return CacheStats(
            hits=self._hits.value,
            misses=self._misses.value,
            evictions=self._evictions.value,
            builds=self._builds.value,
        )

    def get(self, name: str) -> _DimensionIndex:
        """Fetch (building if needed) the index state of dimension ``name``."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                self._hits.inc()
                self._entries.move_to_end(name)
                return entry
            self._misses.inc()
            build_lock = self._build_locks.get(name)
            if build_lock is None:
                build_lock = self._build_locks[name] = threading.Lock()
        with build_lock:
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None:
                    # Another thread finished the build while we waited.
                    self._entries.move_to_end(name)
                    return entry
            built_at = time.perf_counter()
            entry = self._build(name)
            self._build_seconds.observe(time.perf_counter() - built_at)
            with self._lock:
                self._builds.inc()
                self._entries[name] = entry
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions.inc()
                self._build_locks.pop(name, None)
            return entry

    def _build(self, name: str) -> _DimensionIndex:
        dim = self.schema.dimension(name)
        return _DimensionIndex(
            row_of_code=dimension_row_index(self.schema, name),
            feature_codes={
                feature: dim.column(feature).codes
                for feature in self.schema.foreign_features(name)
            },
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ShardEncoder:
    """Encode blocks of fact rows into one (schema, strategy)'s features.

    Parameters
    ----------
    schema:
        The live star schema (fact domains + dimension tables).
    strategy:
        The join strategy; avoided dimensions are skipped entirely,
        joined ones are resolved through the :class:`DimensionIndexCache`.
    cache_capacity:
        Maximum dimension indexes kept resident (default 8).
    registry:
        Metrics registry for the encoder's telemetry (cache counters,
        per-shard encode latency).  ``None`` creates a private one, so
        each encoder's stats stay exact; pass a shared registry to pool
        several components into one snapshot.
    """

    def __init__(
        self,
        schema: StarSchema,
        strategy: "repro.core.strategies.JoinStrategy",  # noqa: F821
        cache_capacity: int = 8,
        registry: MetricsRegistry | None = None,
    ):
        self.schema = schema
        self.strategy = strategy
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._encode_seconds = self.metrics.histogram("data.encode.shard_s")
        self._encoded_shards = self.metrics.counter("data.encode.shards")
        self._encoded_rows = self.metrics.counter("data.encode.rows")
        self.cache = DimensionIndexCache(
            schema, capacity=cache_capacity, registry=self.metrics
        )
        # (|D|, d_R) code blocks for factorized assembly, stacked once
        # per dimension (see _dimension_block).
        self._block_cache: dict[str, np.ndarray] = {}
        self.feature_names: tuple[str, ...] = tuple(strategy.feature_names(schema))
        self.joined_dimensions: tuple[str, ...] = tuple(
            strategy.joined_dimensions(schema)
        )
        self.n_levels: tuple[int, ...] = tuple(
            len(schema.feature_domain(name)) for name in self.feature_names
        )
        # Each feature is either a fact column (home feature or usable FK)
        # or a foreign feature gathered through (dimension, fk_column).
        self._foreign_of: dict[str, tuple[str, str]] = {}
        for name in self.joined_dimensions:
            fk = schema.constraint(name).fk_column
            for feature in schema.foreign_features(name):
                self._foreign_of[feature] = (name, fk)
        self._fact_features = [
            f for f in self.feature_names if f not in self._foreign_of
        ]
        for feature in self._fact_features:
            if feature not in schema.fact:
                raise SchemaError(
                    f"strategy feature {feature!r} is neither a fact column "
                    f"nor a foreign feature of a joined dimension"
                )
        needed = list(self._fact_features)
        for name in self.joined_dimensions:
            fk = schema.constraint(name).fk_column
            if fk not in needed:
                needed.append(fk)
        self._required_columns: tuple[str, ...] = tuple(needed)

    @property
    def required_columns(self) -> tuple[str, ...]:
        """Fact columns a block of rows must provide.

        Home features and usable FKs that are themselves features, plus
        the FK of every joined dimension (needed for the gather even when
        the FK is not a feature, e.g. under NoFK).  Fixed for the
        encoder's lifetime, so it is precomputed off the hot path.
        """
        return self._required_columns

    # ------------------------------------------------------------------
    # Request encoding
    # ------------------------------------------------------------------
    def encode_requests(
        self, rows: Sequence[Mapping[str, object]]
    ) -> dict[str, np.ndarray]:
        """Encode label-valued request rows into per-column code vectors.

        Each row maps fact column names to raw labels; labels are encoded
        through the fact table's closed domains, so an out-of-domain
        value raises :class:`SchemaError` exactly as the paper's closed
        -domain assumption dictates.
        """
        if not rows:
            raise ValueError("cannot encode an empty request batch")
        encoded: dict[str, np.ndarray] = {}
        for column in self._required_columns:
            domain = self.schema.fact.domain(column)
            try:
                values = [row[column] for row in rows]
            except KeyError:
                raise SchemaError(
                    f"prediction request lacks fact column {column!r}; "
                    f"required: {list(self._required_columns)}"
                ) from None
            encoded[column] = domain.encode(values)
        return encoded

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def assemble(self, fact_codes: Mapping[str, np.ndarray]) -> CategoricalMatrix:
        """Assemble the feature matrix for pre-encoded fact columns.

        ``fact_codes`` maps each :attr:`required_columns` entry to an
        ``(n,)`` int code vector.  Foreign features are gathered from the
        cached dimension indexes; a foreign key with no dimension row
        raises :class:`repro.errors.ReferentialIntegrityError` loudly
        rather than gathering garbage.
        """
        n = None
        for column, codes in fact_codes.items():
            codes = np.asarray(codes)
            if n is None:
                n = codes.shape[0]
            elif codes.shape[0] != n:
                raise SchemaError(
                    f"ragged request batch: column {column!r} has "
                    f"{codes.shape[0]} rows, expected {n}"
                )
        if n is None:
            raise ValueError("cannot assemble an empty request batch")

        # One cache lookup and one FK resolution per dimension per batch,
        # however many of its foreign features the strategy keeps.
        entries: dict[str, _DimensionIndex] = {}
        dim_rows: dict[str, np.ndarray] = {}
        columns: list[np.ndarray] = []
        levels: list[int] = []
        for feature in self.feature_names:
            owner = self._foreign_of.get(feature)
            if owner is None:
                try:
                    codes = np.asarray(fact_codes[feature], dtype=np.int64)
                except KeyError:
                    raise SchemaError(
                        f"request batch lacks fact column {feature!r}"
                    ) from None
                n_levels = len(self.schema.fact.domain(feature))
                # Caller-supplied codes are the one unverified input here
                # (encode_requests/assemble_table pre-validate, direct
                # assemble() callers may not); check before they reach
                # the implicit engine's gathers.
                check_code_ranges(
                    codes[:, np.newaxis], (n_levels,), (feature,)
                )
                levels.append(n_levels)
            else:
                name, fk = owner
                if name not in entries:
                    entries[name] = self.cache.get(name)
                    try:
                        fk_codes = np.asarray(fact_codes[fk], dtype=np.int64)
                    except KeyError:
                        raise SchemaError(
                            f"request batch lacks foreign key {fk!r} needed "
                            f"to resolve dimension {name!r}"
                        ) from None
                    dim_rows[name] = resolve_dimension_rows(
                        self.schema,
                        name,
                        fk_codes,
                        row_of_code=entries[name].row_of_code,
                    )
                codes = entries[name].feature_codes[feature][dim_rows[name]]
                levels.append(
                    len(self.schema.dimension(name).domain(feature))
                )
            columns.append(codes)
        if not columns:
            return CategoricalMatrix.empty(n)
        # Fact codes were validated by Domain.encode and dimension codes
        # come from validated tables, so skip the per-batch range scan.
        return CategoricalMatrix(
            np.stack(columns, axis=1), levels, self.feature_names,
            validate=False,
        )

    def assemble_factorized(
        self, fact_codes: Mapping[str, np.ndarray]
    ) -> FactorizedMatrix:
        """Assemble pre-encoded fact columns *without* the dimension gather.

        The factorized sibling of :meth:`assemble`: fact feature columns
        are stacked exactly as there and each joined dimension's FK is
        resolved to dimension rows once (the same ``O(n)``
        :func:`~repro.relational.join.resolve_dimension_rows` call, with
        the same :class:`~repro.errors.ReferentialIntegrityError` on
        dangling keys) — but the per-feature
        ``feature_codes[feature][dim_rows]`` gather is skipped entirely.
        Instead the dimension's cached per-feature code columns are
        stacked once into a ``(|D|, d_R)`` block (memoised per
        dimension, so steady-state assembly does zero per-dimension-row
        work) and handed to the :class:`~repro.ml.sparse.FactorizedMatrix`
        along with the resolved rows.
        """
        n = None
        for column, codes in fact_codes.items():
            codes = np.asarray(codes)
            if n is None:
                n = codes.shape[0]
            elif codes.shape[0] != n:
                raise SchemaError(
                    f"ragged request batch: column {column!r} has "
                    f"{codes.shape[0]} rows, expected {n}"
                )
        if n is None:
            raise ValueError("cannot assemble an empty request batch")

        entries: dict[str, _DimensionIndex] = {}
        dim_rows: dict[str, np.ndarray] = {}
        group_positions: dict[str, list[int]] = {}
        group_features: dict[str, list[str]] = {}
        fact_positions: list[int] = []
        fact_columns: list[np.ndarray] = []
        for position, feature in enumerate(self.feature_names):
            owner = self._foreign_of.get(feature)
            if owner is None:
                try:
                    codes = np.asarray(fact_codes[feature], dtype=np.int64)
                except KeyError:
                    raise SchemaError(
                        f"request batch lacks fact column {feature!r}"
                    ) from None
                check_code_ranges(
                    codes[:, np.newaxis],
                    (self.n_levels[position],),
                    (feature,),
                )
                fact_positions.append(position)
                fact_columns.append(codes)
            else:
                name, fk = owner
                if name not in entries:
                    entries[name] = self.cache.get(name)
                    try:
                        fk_codes = np.asarray(fact_codes[fk], dtype=np.int64)
                    except KeyError:
                        raise SchemaError(
                            f"request batch lacks foreign key {fk!r} needed "
                            f"to resolve dimension {name!r}"
                        ) from None
                    dim_rows[name] = resolve_dimension_rows(
                        self.schema,
                        name,
                        fk_codes,
                        row_of_code=entries[name].row_of_code,
                    )
                group_positions.setdefault(name, []).append(position)
                group_features.setdefault(name, []).append(feature)
        groups = [
            FactorizedGroup(
                name,
                np.asarray(group_positions[name], dtype=np.int64),
                dim_rows[name],
                self._dimension_block(
                    name, entries[name], group_features[name]
                ),
            )
            for name in group_positions
        ]
        stacked = (
            np.stack(fact_columns, axis=1)
            if fact_columns
            else np.zeros((n, 0), dtype=np.int64)
        )
        return FactorizedMatrix(
            self.feature_names,
            self.n_levels,
            np.asarray(fact_positions, dtype=np.int64),
            stacked,
            groups,
        )

    def _dimension_block(
        self, name: str, entry: _DimensionIndex, features: list[str]
    ) -> np.ndarray:
        """The dimension's ``(|D|, d_R)`` code block, memoised by name.

        Stacking the cached per-feature code columns costs
        ``O(|D|·d_R)`` once; afterwards a factorized assembly does no
        per-dimension-row work at all.  Entries are immutable and the
        stack is deterministic, so racing threads writing the same key
        is benign.
        """
        block = self._block_cache.get(name)
        if block is None:
            block = np.stack(
                [entry.feature_codes[feature] for feature in features], axis=1
            ).astype(np.int64, copy=False)
            self._block_cache[name] = block
        return block

    def assemble_table(self, fact_rows: Table) -> CategoricalMatrix:
        """Assemble features for rows shaped like the fact table."""
        return self.assemble(
            {column: fact_rows.codes(column) for column in self.required_columns}
        )

    def assemble_rows(
        self, rows: Sequence[Mapping[str, object]]
    ) -> CategoricalMatrix:
        """Encode label-valued request rows and assemble their features."""
        return self.assemble(self.encode_requests(rows))

    def encode_shard(self, fact_rows: Table) -> tuple[CategoricalMatrix, np.ndarray]:
        """One block of fact rows as an encoded ``(X, y)`` pair.

        The training-side entry point: the same assembly the serving
        path runs per micro-batch, plus the target codes read straight
        off the fact block (labels never pass through a join).

        Each call lands one observation in the ``data.encode.shard_s``
        histogram and one merged ``encode.shard`` span, so multi-pass
        training (FISTA re-streams the source every iteration) reports
        one aggregate line instead of thousands of spans.
        """
        started = time.perf_counter()
        with trace("encode.shard", merge=True):
            encoded = (
                self.assemble_table(fact_rows),
                fact_rows.codes(self.schema.target),
            )
        self._encode_seconds.observe(time.perf_counter() - started)
        self._encoded_shards.inc()
        self._encoded_rows.inc(len(fact_rows))
        return encoded

    def encode_shard_factorized(
        self, fact_rows: Table
    ) -> tuple[FactorizedMatrix, np.ndarray]:
        """One block of fact rows as a factorized ``(X, y)`` pair.

        :meth:`encode_shard` with the gather skipped: same required
        columns, same referential-integrity errors, same telemetry
        (``data.encode.shard_s`` histogram and merged ``encode.shard``
        span), but the features come back as a
        :class:`~repro.ml.sparse.FactorizedMatrix` whose per-shard cost
        is ``O(n)`` past the memoised dimension blocks.
        """
        started = time.perf_counter()
        with trace("encode.shard", merge=True):
            encoded = (
                self.assemble_factorized(
                    {
                        column: fact_rows.codes(column)
                        for column in self.required_columns
                    }
                ),
                fact_rows.codes(self.schema.target),
            )
        self._encode_seconds.observe(time.perf_counter() - started)
        self._encoded_shards.inc()
        self._encoded_rows.inc(len(fact_rows))
        return encoded

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(strategy={self.strategy.name!r}, "
            f"{len(self.feature_names)} features, "
            f"joined={list(self.joined_dimensions)}, {self.cache.stats})"
        )
