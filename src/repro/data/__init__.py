"""Unified shard-oriented data layer: one access path for all consumers.

Before this package, the paper's central comparison — join-materialised
vs. factorised/avoided feature access — was implemented three times:
dense in-memory matrices in the experiment runner, per-shard joins in
:mod:`repro.streaming`, and cached-gather assembly in
:mod:`repro.serving`.  ``repro.data`` states the contract once:

- :mod:`repro.data.source` — the :class:`FeatureSource` protocol
  (encoded ``(X, y)`` shards in a stable order plus schema/domain
  metadata), the in-memory :class:`MatrixSource` adapter, and the
  shared :func:`source_accuracy` scoring loop.
- :mod:`repro.data.encoder` — :class:`ShardEncoder`, the single
  fact-rows → feature-matrix encode path, shared verbatim by serving
  micro-batches (:class:`repro.serving.FeatureService` subclasses it)
  and streaming shards (:class:`repro.streaming.StreamingMatrices`
  encodes through it), with the thread-safe
  :class:`DimensionIndexCache` behind both.
- :mod:`repro.data.prefetch` / :mod:`repro.data.spill` — composable
  decorators: background prefetching behind a bounded queue, and a
  disk-spilling LRU cache of encoded shards.  Decorators never change
  shard bytes, only how they are produced.
- :mod:`repro.data.spec` — :class:`SourceSpec`, the declarative recipe
  ``run_experiment(source=...)`` and the CLI build sources from.

Out-of-core shard *production* (split/table/population/CSV sources)
stays in :mod:`repro.streaming`; its :class:`StreamingMatrices` is the
out-of-core :class:`FeatureSource`.
"""

# Import order matters: `source` must load before `encoder`/`spill`,
# whose imports can re-enter this package while repro.ml initialises.
from repro.data.source import (
    FeatureSource,
    MatrixSource,
    SourceDecorator,
    source_accuracy,
)
from repro.data.prefetch import PrefetchingSource
from repro.data.spill import SpillCacheSource, SpillStats
from repro.data.encoder import CacheStats, DimensionIndexCache, ShardEncoder
from repro.data.spec import SPLITS, SourceSpec

__all__ = [
    "CacheStats",
    "DimensionIndexCache",
    "FeatureSource",
    "MatrixSource",
    "PrefetchingSource",
    "SPLITS",
    "ShardEncoder",
    "SourceDecorator",
    "SourceSpec",
    "SpillCacheSource",
    "SpillStats",
    "source_accuracy",
]
