"""Dataset generators for the reproduction.

Two families:

- :mod:`repro.datasets.synthetic` — the paper's Section 4 simulation
  scenarios (``OneXr``, ``XSXR``, ``RepOneXr``) with uniform, Zipfian and
  needle-and-thread foreign-key skew (:mod:`repro.datasets.skew`).
- :mod:`repro.datasets.realworld` — synthetic emulators of the seven
  real-world star-schema datasets of Table 1 (Walmart, Expedia, Flights,
  Yelp, Movies, LastFM, Books), preserving schema shapes and tuple
  ratios at a laptop-friendly scale.

Every generator emits a :class:`~repro.datasets.splits.SplitDataset`:
a validated star schema pre-split 50/25/25 into train/validation/test,
with Bayes-optimal labels where the generating distribution knows them.
"""

from repro.datasets.realworld import (
    REAL_WORLD_SPECS,
    RealWorldSpec,
    dataset_statistics,
    generate_real_world,
)
from repro.datasets.skew import NeedleThreadFK, UniformFK, ZipfFK
from repro.datasets.splits import SplitDataset, three_way_split
from repro.datasets.synthetic import OneXrScenario, RepOneXrScenario, XSXRScenario

__all__ = [
    "NeedleThreadFK",
    "OneXrScenario",
    "REAL_WORLD_SPECS",
    "RealWorldSpec",
    "RepOneXrScenario",
    "SplitDataset",
    "UniformFK",
    "XSXRScenario",
    "ZipfFK",
    "dataset_statistics",
    "generate_real_world",
    "three_way_split",
]
