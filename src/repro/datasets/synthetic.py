"""The paper's Section 4 simulation scenarios.

Each scenario builds a two-table star schema (fact ``S``, one dimension
``R``) from a controlled "true" distribution and returns a
:class:`~repro.datasets.splits.SplitDataset` whose fact table holds
``n_train + 2 * (n_train // 4)`` rows (the paper samples ``n_S/4``
examples each for validation and holdout testing).

- :class:`OneXrScenario` — a lone foreign feature ``X_r ∈ X_R``
  probabilistically determines ``Y``; everything else is noise.  The
  known worst case for avoiding joins with linear models.
- :class:`XSXRScenario` — a random true probability table over
  ``[X_S, X_R]`` with ``H(Y | X) = 0`` (no Bayes noise).
- :class:`RepOneXrScenario` — like OneXr but every foreign feature is a
  copy of ``X_r``, inflating the FK-to-``X_R``-value ratio to try to
  "confuse" NoJoin models.

**Populations.**  The Monte Carlo study retrains a model on many
independent training sets and decomposes the error at *fixed* test
points, so the dimension table, true distribution and test block must be
shared across runs while training/validation rows are redrawn.  Each
scenario's :meth:`population` returns a :class:`ScenarioPopulation`
supporting exactly that: ``draw(rng, n)`` samples fact-row blocks and
``dataset(train, validation, test)`` assembles them into a
:class:`SplitDataset`.  ``scenario.sample(seed)`` is the one-shot
convenience drawing all three blocks at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.skew import UniformFK
from repro.datasets.splits import SplitDataset
from repro.relational.column import CategoricalColumn, Domain
from repro.relational.schema import KFKConstraint, StarSchema
from repro.relational.table import Table
from repro.rng import ensure_rng

#: Column names shared by every simulated schema.
FK_NAME = "FK"
DIM_NAME = "R"
RID_NAME = "RID"
TARGET_NAME = "Y"


@dataclass
class FactBlock:
    """A block of sampled fact rows (features, keys and labels)."""

    xs_codes: np.ndarray
    fk_codes: np.ndarray
    y: np.ndarray
    y_optimal: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.fk_codes.shape[0]

    @staticmethod
    def concatenate(blocks: list["FactBlock"]) -> "FactBlock":
        """Stack blocks in order (train, validation, test)."""
        return FactBlock(
            xs_codes=np.concatenate([b.xs_codes for b in blocks], axis=0),
            fk_codes=np.concatenate([b.fk_codes for b in blocks]),
            y=np.concatenate([b.y for b in blocks]),
            y_optimal=np.concatenate([b.y_optimal for b in blocks]),
        )


class ScenarioPopulation:
    """A frozen "true world": dimension table plus target distribution.

    Subclasses implement :meth:`draw`; this base handles assembling
    drawn blocks into a validated :class:`SplitDataset`.
    """

    name: str = "scenario"

    def __init__(
        self,
        n_r: int,
        d_s: int,
        dim_columns: list[CategoricalColumn],
        metadata: dict,
    ):
        self.n_r = n_r
        self.d_s = d_s
        self.fk_domain = Domain.of_size(n_r, prefix="fk")
        self.dim_columns = dim_columns
        self.metadata = metadata

    def draw(self, rng: np.random.Generator | int | None, n: int) -> FactBlock:
        """Sample ``n`` fact rows from the population."""
        raise NotImplementedError

    def block_table(self, block: FactBlock) -> Table:
        """Materialise one drawn block as a fact :class:`Table`.

        Out-of-core training (:mod:`repro.streaming`) turns each drawn
        block into a bounded fact-table shard with this; ``dataset``
        uses the same assembly for the fully materialised case, so the
        two paths cannot drift apart.
        """
        columns = [
            CategoricalColumn(TARGET_NAME, Domain.boolean(), block.y),
        ]
        for j in range(self.d_s):
            columns.append(
                CategoricalColumn(
                    f"Xs{j}", Domain.boolean(), block.xs_codes[:, j]
                )
            )
        columns.append(
            CategoricalColumn(FK_NAME, self.fk_domain, block.fk_codes)
        )
        return Table("S", columns)

    def dimension_table(self) -> Table:
        """The frozen dimension table ``R`` (shared by every draw)."""
        return Table(
            DIM_NAME,
            [
                CategoricalColumn(RID_NAME, self.fk_domain, np.arange(self.n_r)),
                *self.dim_columns,
            ],
        )

    def schema_skeleton(self) -> StarSchema:
        """The population's star schema with an *empty* fact table.

        Sharded training never holds all fact rows at once, yet the join
        and encoding machinery needs the schema structure (constraints,
        dimension contents, closed domains).  The skeleton provides
        exactly that; fact rows arrive shard by shard via
        :meth:`block_table`.
        """
        empty = FactBlock(
            xs_codes=np.zeros((0, self.d_s), dtype=np.int64),
            fk_codes=np.zeros(0, dtype=np.int64),
            y=np.zeros(0, dtype=np.int64),
            y_optimal=np.zeros(0, dtype=np.int64),
        )
        return StarSchema(
            fact=self.block_table(empty),
            target=TARGET_NAME,
            dimensions=[
                (self.dimension_table(), KFKConstraint(FK_NAME, DIM_NAME, RID_NAME))
            ],
        )

    def dataset(
        self,
        train: FactBlock,
        validation: FactBlock,
        test: FactBlock,
    ) -> SplitDataset:
        """Assemble drawn blocks into a SplitDataset (rows in block order)."""
        combined = FactBlock.concatenate([train, validation, test])
        schema = StarSchema(
            fact=self.block_table(combined),
            target=TARGET_NAME,
            dimensions=[
                (self.dimension_table(), KFKConstraint(FK_NAME, DIM_NAME, RID_NAME))
            ],
        )
        offsets = np.cumsum([0, train.n_rows, validation.n_rows])
        return SplitDataset(
            name=self.name,
            schema=schema,
            train=np.arange(train.n_rows),
            validation=np.arange(offsets[1], offsets[1] + validation.n_rows),
            test=np.arange(offsets[2], offsets[2] + test.n_rows),
            y_optimal=combined.y_optimal,
            metadata=dict(self.metadata),
        )


def _sample_standard(
    scenario, seed: int | np.random.Generator | None
) -> SplitDataset:
    """Draw train + n/4 validation + n/4 test from a fresh population."""
    rng = ensure_rng(seed)
    population = scenario.population(rng)
    n_eval = max(1, scenario.n_train // 4)
    train = population.draw(rng, scenario.n_train)
    validation = population.draw(rng, n_eval)
    test = population.draw(rng, n_eval)
    return population.dataset(train, validation, test)


def _majority_label(xr_codes: np.ndarray) -> np.ndarray:
    """The majority class per X_r level.

    For binary X_r this reproduces the paper's
    ``P(Y=0 | Xr=0) = P(Y=1 | Xr=1) = p`` convention (level 0's majority
    class is 1 and vice versa when ``p < 0.5``); larger domains
    alternate by parity.
    """
    return ((xr_codes + 1) % 2).astype(np.int64)


class _OneXrPopulation(ScenarioPopulation):
    name = "OneXr"

    def __init__(self, scenario: "OneXrScenario", rng: np.random.Generator):
        xr_domain = Domain.of_size(scenario.xr_domain_size, prefix="x")
        self.xr_codes = rng.integers(0, scenario.xr_domain_size, size=scenario.n_r)
        dim_columns = [CategoricalColumn("Xr0", xr_domain, self.xr_codes)]
        for i in range(1, scenario.d_r):
            dim_columns.append(
                CategoricalColumn(
                    f"Xr{i}",
                    Domain.boolean(),
                    rng.integers(0, 2, size=scenario.n_r),
                )
            )
        self.scenario = scenario
        super().__init__(
            n_r=scenario.n_r,
            d_s=scenario.d_s,
            dim_columns=dim_columns,
            metadata={
                "scenario": "OneXr",
                "p": scenario.p,
                "bayes_error": min(scenario.p, 1.0 - scenario.p),
                "tuple_ratio": scenario.n_train / scenario.n_r,
            },
        )

    def draw(
        self,
        rng: np.random.Generator | int | None,
        n: int,
        fk_subset: np.ndarray | None = None,
    ) -> FactBlock:
        """Sample fact rows; ``fk_subset`` restricts which FK levels occur.

        The restriction powers the Section 6.2 smoothing experiment,
        where a fraction gamma of the FK domain never appears during
        training yet arises at test time.
        """
        rng = ensure_rng(rng)
        scenario = self.scenario
        xs = rng.integers(0, 2, size=(n, scenario.d_s))
        if fk_subset is None:
            fk = np.asarray(
                scenario.fk_sampler.sample(rng, n, scenario.n_r), dtype=np.int64
            )
        else:
            fk_subset = np.asarray(fk_subset, dtype=np.int64)
            if fk_subset.size == 0:
                raise ValueError("fk_subset must contain at least one level")
            fk = fk_subset[
                np.asarray(
                    scenario.fk_sampler.sample(rng, n, fk_subset.size),
                    dtype=np.int64,
                )
            ]
        majority = _majority_label(self.xr_codes[fk])
        flips = rng.random(n) < scenario.p
        y = np.where(flips, 1 - majority, majority).astype(np.int64)
        y_optimal = majority if scenario.p <= 0.5 else 1 - majority
        return FactBlock(xs, fk, y, y_optimal.astype(np.int64))


@dataclass(frozen=True)
class OneXrScenario:
    """Scenario ``OneXr``: a lone foreign feature determines the target.

    Generation (Section 4.1): (1) build ``R`` with iid random feature
    values, feature ``Xr0`` drawn over ``xr_domain_size`` levels;
    (2) build ``S`` with iid random home features; (3) assign foreign
    keys by ``fk_sampler``; (4) set ``Y`` from the referenced tuple's
    ``X_r`` through ``P(Y = majority(X_r) | X_r) = 1 - p``.

    Parameters mirror the figure axes: ``n_train`` (= paper's ``n_S``),
    ``n_r`` (= ``|D_FK|``), ``d_s``, ``d_r``, flip probability ``p``,
    ``xr_domain_size`` (= ``|D_Xr|``, Figure 2F), and the FK skew.
    """

    n_train: int = 1000
    n_r: int = 40
    d_s: int = 4
    d_r: int = 4
    p: float = 0.1
    xr_domain_size: int = 2
    fk_sampler: object = field(default_factory=UniformFK)

    def _validate(self) -> None:
        if self.n_train < 4:
            raise ValueError(f"n_train must be >= 4, got {self.n_train}")
        if self.n_r < 1:
            raise ValueError(f"n_r must be >= 1, got {self.n_r}")
        if self.d_r < 1:
            raise ValueError("OneXr requires d_r >= 1 (X_r must exist)")
        if self.d_s < 0:
            raise ValueError(f"d_s must be >= 0, got {self.d_s}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {self.p}")
        if self.xr_domain_size < 2:
            raise ValueError(
                f"xr_domain_size must be >= 2, got {self.xr_domain_size}"
            )

    def population(
        self, seed: int | np.random.Generator | None = 0
    ) -> ScenarioPopulation:
        """Freeze a "true world" (dimension table + distribution)."""
        self._validate()
        return _OneXrPopulation(self, ensure_rng(seed))

    def sample(self, seed: int | np.random.Generator | None = 0) -> SplitDataset:
        """Draw one full dataset (fresh population, all three splits)."""
        return _sample_standard(self, seed)


class _XSXRPopulation(ScenarioPopulation):
    name = "XSXR"

    def __init__(self, scenario: "XSXRScenario", rng: np.random.Generator):
        d_s, d_r = scenario.d_s, scenario.d_r
        n_combos = 1 << (d_s + d_r)
        n_xr = 1 << d_r
        # (1)-(2) Random TPT with a deterministic Y per entry.
        tpt = rng.random(n_combos)
        tpt /= tpt.sum()
        self.y_of_combo = rng.integers(0, 2, size=n_combos)
        xr_of_combo = np.arange(n_combos) % n_xr
        # (3) Dimension tuples from the X_R marginal.
        p_xr = np.bincount(xr_of_combo, weights=tpt, minlength=n_xr)
        self.dim_xr = rng.choice(n_xr, size=scenario.n_r, p=p_xr)
        # (4)-(5) Restrict the TPT to the sampled X_R combos, renormalise.
        available = np.zeros(n_xr, dtype=bool)
        available[self.dim_xr] = True
        restricted = np.where(available[xr_of_combo], tpt, 0.0)
        total = restricted.sum()
        if total <= 0:
            raise RuntimeError("restricted TPT is empty; increase n_r")
        self.restricted_tpt = restricted / total
        self.n_xr = n_xr
        self.scenario = scenario
        self._rids_by_xr = {
            int(xr): np.flatnonzero(self.dim_xr == xr)
            for xr in np.unique(self.dim_xr)
        }
        dim_columns = [
            CategoricalColumn(
                f"Xr{bit}", Domain.boolean(), (self.dim_xr >> bit) & 1
            )
            for bit in range(d_r)
        ]
        super().__init__(
            n_r=scenario.n_r,
            d_s=d_s,
            dim_columns=dim_columns,
            metadata={
                "scenario": "XSXR",
                "bayes_error": 0.0,
                "tuple_ratio": scenario.n_train / scenario.n_r,
            },
        )

    def draw(self, rng: np.random.Generator | int | None, n: int) -> FactBlock:
        rng = ensure_rng(rng)
        d_r = self.scenario.d_r
        combos = rng.choice(self.restricted_tpt.shape[0], size=n, p=self.restricted_tpt)
        y = self.y_of_combo[combos].astype(np.int64)
        row_xr = combos % self.n_xr
        fk = np.empty(n, dtype=np.int64)
        for xr, rids in self._rids_by_xr.items():
            mask = row_xr == xr
            if np.any(mask):
                fk[mask] = rng.choice(rids, size=int(mask.sum()))
        xs_values = combos >> d_r
        xs = np.stack(
            [(xs_values >> bit) & 1 for bit in range(self.d_s)], axis=1
        ) if self.d_s else np.zeros((n, 0), dtype=np.int64)
        return FactBlock(xs.astype(np.int64), fk, y, y.copy())


@dataclass(frozen=True)
class XSXRScenario:
    """Scenario ``XSXR``: a noiseless true probability table over ``[X_S, X_R]``.

    Follows Section 4.2's six-step procedure: random TPT over all
    boolean ``[X_S, X_R]`` combinations, deterministic ``Y`` per entry,
    dimension tuples sampled from the ``X_R`` marginal, TPT restricted
    and renormalised to the sampled ``X_R`` combinations, fact rows
    sampled from the restricted TPT, and foreign keys drawn uniformly
    among the RIDs sharing the row's ``X_R`` combination.
    """

    n_train: int = 1000
    n_r: int = 40
    d_s: int = 4
    d_r: int = 4
    max_total_features: int = 20

    def _validate(self) -> None:
        if self.n_train < 4:
            raise ValueError(f"n_train must be >= 4, got {self.n_train}")
        if self.n_r < 1:
            raise ValueError(f"n_r must be >= 1, got {self.n_r}")
        if self.d_s < 0 or self.d_r < 1:
            raise ValueError("XSXR requires d_s >= 0 and d_r >= 1")
        if self.d_s + self.d_r > self.max_total_features:
            raise ValueError(
                f"d_s + d_r = {self.d_s + self.d_r} exceeds the TPT limit "
                f"({self.max_total_features}); the table has 2^(d_s+d_r) rows"
            )

    def population(
        self, seed: int | np.random.Generator | None = 0
    ) -> ScenarioPopulation:
        """Freeze a "true world" (TPT + dimension table)."""
        self._validate()
        return _XSXRPopulation(self, ensure_rng(seed))

    def sample(self, seed: int | np.random.Generator | None = 0) -> SplitDataset:
        """Draw one full dataset (fresh population, all three splits)."""
        return _sample_standard(self, seed)


class _RepOneXrPopulation(ScenarioPopulation):
    name = "RepOneXr"

    def __init__(self, scenario: "RepOneXrScenario", rng: np.random.Generator):
        self.xr_codes = rng.integers(0, 2, size=scenario.n_r)
        dim_columns = [
            CategoricalColumn(f"Xr{i}", Domain.boolean(), self.xr_codes)
            for i in range(scenario.d_r)
        ]
        self.scenario = scenario
        super().__init__(
            n_r=scenario.n_r,
            d_s=scenario.d_s,
            dim_columns=dim_columns,
            metadata={
                "scenario": "RepOneXr",
                "p": scenario.p,
                "bayes_error": min(scenario.p, 1.0 - scenario.p),
                "tuple_ratio": scenario.n_train / scenario.n_r,
            },
        )

    def draw(self, rng: np.random.Generator | int | None, n: int) -> FactBlock:
        rng = ensure_rng(rng)
        scenario = self.scenario
        xs = rng.integers(0, 2, size=(n, scenario.d_s))
        fk = rng.integers(0, scenario.n_r, size=n)
        majority = _majority_label(self.xr_codes[fk])
        flips = rng.random(n) < scenario.p
        y = np.where(flips, 1 - majority, majority).astype(np.int64)
        y_optimal = majority if scenario.p <= 0.5 else 1 - majority
        return FactBlock(xs, fk, y, y_optimal.astype(np.int64))


@dataclass(frozen=True)
class RepOneXrScenario:
    """Scenario ``RepOneXr``: every foreign feature replicates ``X_r``.

    Section 4.3: ``X_R`` of a dimension tuple is the single sampled
    ``X_r`` value repeated ``d_r`` times, so the FD ``FK → X_R`` maps
    many FK values onto very few distinct ``X_R`` vectors.  Targets
    follow the OneXr convention with flip probability ``p``.
    """

    n_train: int = 1000
    n_r: int = 40
    d_s: int = 4
    d_r: int = 4
    p: float = 0.1

    def _validate(self) -> None:
        if self.n_train < 4:
            raise ValueError(f"n_train must be >= 4, got {self.n_train}")
        if self.n_r < 1:
            raise ValueError(f"n_r must be >= 1, got {self.n_r}")
        if self.d_r < 1 or self.d_s < 0:
            raise ValueError("RepOneXr requires d_r >= 1 and d_s >= 0")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {self.p}")

    def population(
        self, seed: int | np.random.Generator | None = 0
    ) -> ScenarioPopulation:
        """Freeze a "true world" (replicated dimension table)."""
        self._validate()
        return _RepOneXrPopulation(self, ensure_rng(seed))

    def sample(self, seed: int | np.random.Generator | None = 0) -> SplitDataset:
        """Draw one full dataset (fresh population, all three splits)."""
        return _sample_standard(self, seed)
