"""Foreign-key skew samplers for the simulation study.

Section 4.1's "Foreign Key Skew" experiments replace the uniform
``P(FK)`` of the base procedure with either a Zipfian distribution or a
"needle-and-thread" distribution (one heavy level, the rest uniform).
Each sampler draws ``n`` foreign-key codes over ``n_levels`` levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng


@dataclass(frozen=True)
class UniformFK:
    """Uniform foreign-key assignment (the default of step 3, Section 4.1)."""

    def probabilities(self, n_levels: int) -> np.ndarray:
        """Level probabilities, uniform."""
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        return np.full(n_levels, 1.0 / n_levels)

    def sample(
        self, rng: np.random.Generator | int | None, n: int, n_levels: int
    ) -> np.ndarray:
        """Draw ``n`` codes in ``[0, n_levels)``."""
        return ensure_rng(rng).integers(0, n_levels, size=n)


@dataclass(frozen=True)
class ZipfFK:
    """Zipfian foreign-key skew: ``P(level r) ∝ 1 / (r+1)^s``.

    ``s = 0`` degenerates to uniform; the paper sweeps ``s`` up to 4 and
    uses ``s = 2`` for its training-size sweep (Figure 5 A-B).
    """

    s: float = 1.0

    def probabilities(self, n_levels: int) -> np.ndarray:
        """Zipf level probabilities over ``n_levels`` ranks."""
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        if self.s < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {self.s}")
        weights = 1.0 / np.power(np.arange(1, n_levels + 1, dtype=np.float64), self.s)
        return weights / weights.sum()

    def sample(
        self, rng: np.random.Generator | int | None, n: int, n_levels: int
    ) -> np.ndarray:
        """Draw ``n`` codes with Zipfian level frequencies."""
        return ensure_rng(rng).choice(
            n_levels, size=n, p=self.probabilities(n_levels)
        )


@dataclass(frozen=True)
class NeedleThreadFK:
    """Needle-and-thread skew: mass ``needle_prob`` on one level.

    The "needle" level (code 0) receives probability ``needle_prob``;
    the remaining mass spreads uniformly over the "thread" (all other
    levels).  The paper sweeps ``needle_prob`` up to 1 and uses 0.5 for
    its training-size sweep (Figure 5 C-D).
    """

    needle_prob: float = 0.5

    def probabilities(self, n_levels: int) -> np.ndarray:
        """Level probabilities: needle at code 0, uniform thread."""
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        if not 0.0 <= self.needle_prob <= 1.0:
            raise ValueError(
                f"needle_prob must lie in [0, 1], got {self.needle_prob}"
            )
        if n_levels == 1:
            return np.array([1.0])
        probs = np.full(
            n_levels, (1.0 - self.needle_prob) / (n_levels - 1)
        )
        probs[0] = self.needle_prob
        return probs

    def sample(
        self, rng: np.random.Generator | int | None, n: int, n_levels: int
    ) -> np.ndarray:
        """Draw ``n`` codes with needle-and-thread frequencies."""
        return ensure_rng(rng).choice(
            n_levels, size=n, p=self.probabilities(n_levels)
        )
