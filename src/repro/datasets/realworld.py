"""Emulators of the paper's seven real-world star-schema datasets.

The originals (Kaggle, GroupLens, openflights, last.fm, BookCrossing)
are unavailable offline, so each is replaced by a synthetic generator
that preserves what the paper's phenomena depend on:

- the star schema shape (number of dimension tables ``q``, home feature
  count ``d_S``, per-dimension foreign feature count ``d_Ri``);
- the **tuple ratio** of every dimension (Table 1), the quantity the
  whole join-avoidance rule is built on;
- open-domain foreign keys (Expedia's search events) that can never be
  used as features;
- a planted target distribution in which ``Y`` depends on home
  features, foreign features, *and* per-foreign-key identity effects,
  so JoinAll/NoJoin/NoFK genuinely trade off bias and variance the way
  Section 3 describes.

Row counts are scaled down ~100x (configurable through ``n_fact``);
tuple ratios are preserved by scaling each dimension with the fact
table.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.skew import ZipfFK
from repro.datasets.splits import SplitDataset, three_way_split
from repro.obs import registry, trace
from repro.relational.column import CategoricalColumn, Domain
from repro.relational.schema import KFKConstraint, StarSchema
from repro.relational.table import Table
from repro.rng import ensure_rng


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    e = np.exp(z[~positive])
    out[~positive] = e / (1.0 + e)
    return out


@dataclass(frozen=True)
class DimensionSpec:
    """Shape and signal weights of one emulated dimension table.

    Attributes
    ----------
    name:
        Dimension table name (e.g. ``"users"``).
    tuple_ratio:
        Paper's Table 1 ratio of *training* examples to dimension rows;
        the emulator sizes the dimension as
        ``n_train / tuple_ratio`` (minimum 2 rows).
    n_features:
        Foreign feature count ``d_Ri``.
    xr_effect:
        Weight of the foreign features' contribution to the target.
    fk_effect:
        Weight of the per-row identity effect — target signal carried by
        *which* dimension row a fact row references beyond what the
        foreign features record.  Non-zero values make NoFK lose
        accuracy (Flights, LastFM, Books in the paper).
    open_fk:
        Whether the foreign key has an open domain (Expedia's search
        id): it can never be used as a feature and the dimension can
        never be discarded.
    feature_domain_size:
        Domain size of each foreign feature.
    fk_skew:
        Zipf exponent for the foreign-key frequency distribution.  Real
        activity data concentrates on popular entities (LastFM plays on
        popular artists, book ratings on bestsellers); the skew is what
        makes per-entity identity effects learnable and hence NoFK
        costly on those datasets.
    """

    name: str
    tuple_ratio: float
    n_features: int
    xr_effect: float = 1.0
    fk_effect: float = 0.0
    open_fk: bool = False
    feature_domain_size: int = 4
    fk_skew: float = 0.0


@dataclass(frozen=True)
class RealWorldSpec:
    """Full generator specification for one emulated dataset.

    ``n_fact`` counts *all* rows; the 50/25/25 split yields
    ``n_train = n_fact / 2``, matching Table 1's convention that the
    listed tuple ratio is ``0.5 × n_S / n_R``.
    """

    name: str
    n_fact: int
    d_s: int
    dimensions: tuple[DimensionSpec, ...]
    xs_effect: float = 1.0
    sharpness: float = 2.0
    xs_domain_size: int = 4

    def generate(
        self,
        n_fact: int | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> SplitDataset:
        """Materialise the dataset at ``n_fact`` rows (default: spec size)."""
        rng = ensure_rng(seed)
        n = n_fact or self.n_fact
        if n < 8:
            raise ValueError(f"n_fact must be >= 8, got {n}")
        n_train = n // 2
        score = np.zeros(n)

        # Home features.
        xs_columns: list[CategoricalColumn] = []
        for j in range(self.d_s):
            domain = Domain.of_size(self.xs_domain_size, prefix=f"s{j}_")
            codes = rng.integers(0, self.xs_domain_size, size=n)
            weights = rng.normal(0.0, 1.0, self.xs_domain_size)
            score += self.xs_effect * weights[codes] / max(1, self.d_s) ** 0.5
            xs_columns.append(CategoricalColumn(f"hf{j}", domain, codes))

        # Dimension tables and their contributions.
        dim_tables: list[tuple[Table, KFKConstraint]] = []
        fk_columns: list[CategoricalColumn] = []
        open_fks: set[str] = set()
        for spec in self.dimensions:
            n_rows = max(2, int(round(n_train / spec.tuple_ratio)))
            fk_domain = Domain.of_size(n_rows, prefix=f"{spec.name}_")
            columns = [CategoricalColumn("RID", fk_domain, np.arange(n_rows))]
            feature_scores = np.zeros(n_rows)
            k = spec.feature_domain_size
            for j in range(spec.n_features):
                codes = rng.integers(0, k, size=n_rows)
                weights = rng.normal(0.0, 1.0, k)
                feature_scores += (
                    spec.xr_effect
                    * weights[codes]
                    / max(1, spec.n_features) ** 0.5
                )
                columns.append(
                    CategoricalColumn(
                        f"{spec.name}_f{j}", Domain.of_size(k, prefix=f"{spec.name}{j}_"), codes
                    )
                )
            identity = rng.normal(0.0, 1.0, n_rows) * spec.fk_effect
            if spec.fk_skew > 0:
                fk_codes = ZipfFK(s=spec.fk_skew).sample(rng, n, n_rows)
            else:
                fk_codes = rng.integers(0, n_rows, size=n)
            score += feature_scores[fk_codes] + identity[fk_codes]
            fk_name = f"{spec.name}_fk"
            fk_columns.append(CategoricalColumn(fk_name, fk_domain, fk_codes))
            rid_column = columns[0].renamed(f"{spec.name}_rid")
            dim_tables.append(
                (
                    Table(spec.name, [rid_column, *columns[1:]]),
                    KFKConstraint(fk_name, spec.name, f"{spec.name}_rid"),
                )
            )
            if spec.open_fk:
                open_fks.add(fk_name)

        # Target: Bernoulli(sigmoid(sharpness * standardised score)).
        std = score.std()
        if std > 0:
            score = (score - score.mean()) / std
        p1 = _sigmoid(self.sharpness * score)
        y = (rng.random(n) < p1).astype(np.int64)
        y_optimal = (p1 > 0.5).astype(np.int64)

        fact = Table(
            "fact",
            [
                CategoricalColumn("label", Domain.boolean(), y),
                *xs_columns,
                *fk_columns,
            ],
        )
        schema = StarSchema(
            fact=fact,
            target="label",
            dimensions=dim_tables,
            open_fks=frozenset(open_fks),
        )
        train, validation, test = three_way_split(n, seed=rng)
        return SplitDataset(
            name=self.name,
            schema=schema,
            train=train,
            validation=validation,
            test=test,
            y_optimal=y_optimal,
            metadata={
                "spec": self.name,
                "tuple_ratios": {
                    spec.name: schema.tuple_ratio(spec.name) / 2.0
                    for spec in self.dimensions
                },
            },
        )


#: Table 1 reconstructions.  Tuple ratios and feature counts follow the
#: paper; ``fk_effect`` is positive exactly where the paper found NoFK to
#: lose accuracy (Flights, LastFM, Books, and mildly Expedia/Movies) and
#: zero where NoFK matched or beat JoinAll (Yelp, Walmart).
REAL_WORLD_SPECS: dict[str, RealWorldSpec] = {
    "expedia": RealWorldSpec(
        name="expedia",
        n_fact=2000,
        d_s=1,
        dimensions=(
            DimensionSpec(
                "hotels", tuple_ratio=39.5, n_features=8,
                xr_effect=1.0, fk_effect=0.6,
            ),
            DimensionSpec(
                "searches", tuple_ratio=1.0, n_features=14,
                xr_effect=0.6, fk_effect=0.0, open_fk=True,
            ),
        ),
    ),
    "movies": RealWorldSpec(
        name="movies",
        n_fact=2000,
        d_s=0,
        dimensions=(
            DimensionSpec(
                "users", tuple_ratio=82.8, n_features=4,
                xr_effect=1.0, fk_effect=0.5,
            ),
            DimensionSpec(
                "movies", tuple_ratio=135.0, n_features=21,
                xr_effect=1.0, fk_effect=0.5,
            ),
        ),
    ),
    "yelp": RealWorldSpec(
        name="yelp",
        n_fact=2000,
        d_s=0,
        dimensions=(
            DimensionSpec(
                "users", tuple_ratio=9.4, n_features=32,
                xr_effect=1.0, fk_effect=0.0,
            ),
            DimensionSpec(
                "businesses", tuple_ratio=2.5, n_features=6,
                xr_effect=2.0, fk_effect=0.0,
            ),
        ),
    ),
    "walmart": RealWorldSpec(
        name="walmart",
        n_fact=2000,
        d_s=1,
        dimensions=(
            DimensionSpec(
                "stores", tuple_ratio=90.1, n_features=9,
                xr_effect=1.0, fk_effect=0.0,
            ),
            DimensionSpec(
                "indicators", tuple_ratio=4684.1, n_features=2,
                xr_effect=1.0, fk_effect=0.0,
            ),
        ),
        sharpness=3.0,
    ),
    "lastfm": RealWorldSpec(
        name="lastfm",
        n_fact=2000,
        d_s=0,
        dimensions=(
            DimensionSpec(
                "users", tuple_ratio=42.0, n_features=7,
                xr_effect=0.5, fk_effect=1.6, fk_skew=1.0,
            ),
            DimensionSpec(
                "artists", tuple_ratio=3.5, n_features=4,
                xr_effect=0.5, fk_effect=1.6, fk_skew=1.2,
            ),
        ),
        sharpness=2.5,
    ),
    "books": RealWorldSpec(
        name="books",
        n_fact=2000,
        d_s=0,
        dimensions=(
            DimensionSpec(
                "readers", tuple_ratio=4.6, n_features=2,
                xr_effect=0.6, fk_effect=1.0, fk_skew=0.8,
            ),
            DimensionSpec(
                "books", tuple_ratio=2.6, n_features=4,
                xr_effect=0.6, fk_effect=1.0, fk_skew=1.0,
            ),
        ),
        sharpness=1.2,
    ),
    "flights": RealWorldSpec(
        name="flights",
        n_fact=2000,
        d_s=20,
        xs_effect=0.7,
        dimensions=(
            DimensionSpec(
                "airlines", tuple_ratio=61.6, n_features=5,
                xr_effect=0.8, fk_effect=1.0,
            ),
            DimensionSpec(
                "src_airports", tuple_ratio=10.5, n_features=6,
                xr_effect=0.8, fk_effect=1.0,
            ),
            DimensionSpec(
                "dst_airports", tuple_ratio=10.5, n_features=6,
                xr_effect=0.8, fk_effect=1.0,
            ),
        ),
        sharpness=3.0,
    ),
}

#: Dataset order used by the paper's tables.
DATASET_ORDER = (
    "expedia",
    "movies",
    "yelp",
    "walmart",
    "lastfm",
    "books",
    "flights",
)


def generate_real_world(
    name: str,
    n_fact: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> SplitDataset:
    """Generate one emulated dataset by name (see :data:`REAL_WORLD_SPECS`).

    Generation is cross-cutting setup work shared by every command and
    experiment, so it counts into the process-wide registry
    (``datasets.generated`` / ``datasets.rows``) and traces as a
    ``generate`` span.
    """
    try:
        spec = REAL_WORLD_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(REAL_WORLD_SPECS)}"
        ) from None
    with trace("generate", dataset=name):
        dataset = spec.generate(n_fact=n_fact, seed=seed)
    metrics = registry()
    metrics.counter("datasets.generated").inc()
    metrics.counter("datasets.rows").inc(dataset.schema.fact.n_rows)
    return dataset


@dataclass
class DatasetStatistics:
    """One row of the reproduction's Table 1."""

    dataset: str
    n_s: int
    d_s: int
    q: int
    dimensions: list[tuple[str, int, int, float | None]] = field(
        default_factory=list
    )

    def __str__(self) -> str:
        dims = "; ".join(
            f"{name}: n_R={n_r}, d_R={d_r}, "
            + (f"ratio={ratio:.1f}" if ratio is not None else "ratio=N/A")
            for name, n_r, d_r, ratio in self.dimensions
        )
        return (
            f"{self.dataset}: n_S={self.n_s}, d_S={self.d_s}, q={self.q} "
            f"[{dims}]"
        )


def dataset_statistics(dataset: SplitDataset) -> DatasetStatistics:
    """Compute the Table 1 statistics row for a generated dataset.

    The tuple ratio follows the paper's convention of counting
    *training* examples: ``0.5 × n_S / n_R`` under the 50/25/25 split.
    Open-FK dimensions report ``None`` (the paper's "N/A").
    """
    schema = dataset.schema
    stats = DatasetStatistics(
        dataset=dataset.name,
        n_s=schema.fact.n_rows,
        d_s=len(schema.home_features),
        q=schema.q,
    )
    for name in schema.dimension_names:
        constraint = schema.constraint(name)
        is_open = constraint.fk_column in schema.open_fks
        ratio = None if is_open else dataset.train.size / schema.dimension(name).n_rows
        stats.dimensions.append(
            (
                name,
                schema.dimension(name).n_rows,
                len(schema.foreign_features(name)),
                ratio,
            )
        )
    return stats
