"""Train/validation/test splitting and the SplitDataset container.

The paper pre-splits every dataset 50/25/25 for training, validation
(feature selection and hyper-parameter tuning), and holdout testing
(Section 3.2).  The simulation study instead samples ``n_S`` training
examples plus ``n_S/4`` each for validation and test (Section 4); both
conventions produce the same container.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.schema import StarSchema
from repro.rng import ensure_rng


def three_way_split(
    n: int,
    fractions: tuple[float, float] = (0.5, 0.25),
    seed: int | np.random.Generator | None = 0,
    shuffle: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``range(n)`` into train/validation/test index arrays.

    Parameters
    ----------
    n:
        Number of examples.
    fractions:
        ``(train fraction, validation fraction)``; the remainder is the
        test split.  Defaults to the paper's 50/25/25.
    seed:
        Shuffling randomness.
    shuffle:
        Set false to split contiguously (used when the generator already
        randomised row order).
    """
    if n < 3:
        raise ValueError(f"need at least 3 examples to split, got {n}")
    train_frac, val_frac = fractions
    if train_frac <= 0 or val_frac <= 0 or train_frac + val_frac >= 1:
        raise ValueError(f"invalid split fractions {fractions}")
    order = ensure_rng(seed).permutation(n) if shuffle else np.arange(n)
    n_train = min(max(1, int(round(train_frac * n))), n - 2)
    n_val = min(max(1, int(round(val_frac * n))), n - n_train - 1)
    return (
        order[:n_train],
        order[n_train : n_train + n_val],
        order[n_train + n_val :],
    )


@dataclass
class SplitDataset:
    """A star schema with a fixed train/validation/test row split.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"yelp"`` or ``"OneXr"``).
    schema:
        The full star schema; the fact table holds *all* rows.
    train, validation, test:
        Disjoint row-index arrays into the fact table.
    y_optimal:
        Bayes-optimal label per fact row when the generating
        distribution is known (simulation scenarios); ``None`` for the
        real-world emulators' observational splits.
    """

    name: str
    schema: StarSchema
    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray
    y_optimal: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.schema.fact.n_rows
        splits = [self.train, self.validation, self.test]
        combined = np.concatenate(splits)
        if combined.size and (combined.min() < 0 or combined.max() >= n):
            raise ValueError("split indices out of range for the fact table")
        if len(np.unique(combined)) != combined.size:
            raise ValueError("train/validation/test splits overlap")
        if self.y_optimal is not None and self.y_optimal.shape != (n,):
            raise ValueError(
                f"y_optimal must have one entry per fact row ({n}), "
                f"got shape {self.y_optimal.shape}"
            )

    @property
    def y(self) -> np.ndarray:
        """Observed labels for every fact row."""
        return self.schema.fact.codes(self.schema.target)

    def labels(self, split: str) -> np.ndarray:
        """Observed labels of one split (``'train'|'validation'|'test'``)."""
        return self.y[self.rows(split)]

    def optimal_labels(self, split: str) -> np.ndarray:
        """Bayes-optimal labels of one split (simulations only)."""
        if self.y_optimal is None:
            raise ValueError(
                f"dataset {self.name!r} has no known Bayes-optimal labels"
            )
        return self.y_optimal[self.rows(split)]

    def rows(self, split: str) -> np.ndarray:
        """Row indices of one split."""
        try:
            return {
                "train": self.train,
                "validation": self.validation,
                "test": self.test,
            }[split]
        except KeyError:
            raise ValueError(
                f"unknown split {split!r}; expected train/validation/test"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SplitDataset({self.name!r}, train={self.train.size}, "
            f"val={self.validation.size}, test={self.test.size}, "
            f"q={self.schema.q})"
        )
