"""Serving-time feature assembly with cached dimension indexes.

Offline, a strategy materialises its features by re-running the KFK
join over the whole fact table (:meth:`JoinStrategy.matrices`).  Online,
that is the wrong shape of work: each request brings a handful of fact
rows, and re-joining per request would rebuild the code→row hash table
of every dimension every time.  :class:`FeatureService` precomputes each
joined dimension's row index (:func:`repro.relational.join.dimension_row_index`)
and its foreign-feature code columns once, keeps them in an LRU cache,
and assembles a request's :class:`CategoricalMatrix` with O(1) numpy
gathers per dimension.

Dimensions the loaded strategy avoids are never touched — the serving
path realises the paper's payoff directly: a NoJoin model needs *no*
dimension access at all to serve predictions.

Since the unified data layer landed, the machinery itself lives in
:mod:`repro.data.encoder`: :class:`FeatureService` *is* a
:class:`~repro.data.encoder.ShardEncoder`, the same encode path the
out-of-core trainers run per shard, so a served micro-batch and a
training shard are assembled by literally the same code.  The assembled
matrices feed the models' implicit one-hot engine (:mod:`repro.ml.sparse`)
end to end: dimension codes gathered from validated tables skip
re-validation, caller-supplied fact codes get one cheap range check,
and the dense one-hot matrix is never materialised anywhere on the
request path, however large the FK domains.
"""

from __future__ import annotations

from repro.data.encoder import CacheStats, DimensionIndexCache, ShardEncoder

__all__ = [
    "CacheStats",
    "DimensionIndexCache",
    "FeatureService",
]


class FeatureService(ShardEncoder):
    """Assembles serving-time feature matrices for one (schema, strategy).

    A :class:`~repro.data.encoder.ShardEncoder` under its serving name:
    construction precomputes the strategy's feature layout and required
    request columns, :meth:`assemble`/:meth:`assemble_table`/
    :meth:`assemble_rows` build request matrices through the
    :class:`DimensionIndexCache`, and :attr:`required_columns` is the
    request contract.  See the encoder for the full interface.

    Parameters
    ----------
    schema:
        The live star schema (fact domains + dimension tables).
    strategy:
        The join strategy of the model being served; avoided dimensions
        are skipped entirely, joined ones are resolved through the
        :class:`DimensionIndexCache`.
    cache_capacity:
        Maximum dimension indexes kept resident (default 8).
    registry:
        Metrics registry for cache/encode telemetry; a
        :class:`~repro.serving.server.PredictionServer` passes its own
        so all serving metrics share one snapshot.  ``None`` keeps a
        private registry (exact per-instance stats).
    """
