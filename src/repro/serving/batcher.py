"""Micro-batching: coalesce single-row requests into vectorized batches.

Every predictor in :mod:`repro.ml` is vectorized over rows, so the cost
of a predict call is dominated by per-call overhead (feature assembly,
one-hot allocation, tree routing setup) amortised over the batch.  A
:class:`MicroBatcher` exploits that: callers ``submit()`` individual
rows and receive a :class:`PendingPrediction` handle; the batcher runs
the underlying batch function once per *batch*, flushing when

- the batch reaches ``max_batch_size`` rows (flushed inline), or
- the oldest queued row has waited ``max_wait_s`` (checked on the next
  ``submit``/``poll``), or
- a caller forces it (``flush()``, or ``PendingPrediction.result()`` on
  a still-queued row — so a result can always be claimed immediately).

The design is deliberately synchronous and single-threaded: batching is
a *throughput* device here, and keeping it free of locks makes the
flush semantics exactly testable.  Results are delivered strictly in
submission order.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any


class PendingPrediction:
    """A handle to a submitted row's eventual prediction."""

    __slots__ = ("_batcher", "_result", "_error", "_done")

    def __init__(self, batcher: "MicroBatcher"):
        self._batcher = batcher
        self._result: Any = None
        self._error: BaseException | None = None
        self._done = False

    def done(self) -> bool:
        """Whether the prediction has been computed (or failed)."""
        return self._done

    def result(self) -> Any:
        """The prediction, forcing a flush if the row is still queued.

        If the batch call failed, every co-batched handle re-raises the
        failure here — a lost prediction is never silently ``None``.
        """
        if not self._done:
            self._batcher.flush(reason="forced")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, value: Any) -> None:
        self._result = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


@dataclass
class BatcherStats:
    """Accounting for flush behaviour; exposed via server stats."""

    submitted: int = 0
    flushes: int = 0
    rows_flushed: int = 0
    flush_reasons: dict[str, int] = field(default_factory=dict)
    max_batch: int = 0

    @property
    def mean_batch(self) -> float:
        """Average rows per flushed batch (0.0 before any flush)."""
        return self.rows_flushed / self.flushes if self.flushes else 0.0


class MicroBatcher:
    """Coalesces submitted rows and runs a batch function over them.

    Parameters
    ----------
    batch_fn:
        Called with the list of queued payloads; must return one result
        per payload, in order.
    max_batch_size:
        Queue length that triggers an inline flush on ``submit``.
    max_wait_s:
        Maximum age of the oldest queued payload before the next
        ``submit``/``poll`` flushes (0 degenerates to flushing on every
        submit; ``None`` disables the deadline, leaving only the size
        trigger and explicit flushes).
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    def __init__(
        self,
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        max_batch_size: int = 64,
        max_wait_s: float | None = 0.005,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s is not None and max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.clock = clock
        self.stats = BatcherStats()
        self._queue: list[tuple[Any, PendingPrediction]] = []
        self._oldest: float | None = None

    def __len__(self) -> int:
        return len(self._queue)

    def submit(self, payload: Any) -> PendingPrediction:
        """Queue one row; may flush inline if a trigger fires."""
        pending = PendingPrediction(self)
        self.stats.submitted += 1
        if self._oldest is None:
            self._oldest = self.clock()
        self._queue.append((payload, pending))
        if len(self._queue) >= self.max_batch_size:
            self.flush(reason="size")
        else:
            self._flush_if_stale()
        return pending

    def poll(self) -> bool:
        """Flush if the oldest queued row exceeded ``max_wait_s``.

        Returns whether a flush happened.  Callers with idle periods
        (e.g. a server loop between request bursts) call this to bound
        queuing latency.
        """
        return self._flush_if_stale()

    def _flush_if_stale(self) -> bool:
        if (
            self._queue
            and self.max_wait_s is not None
            and self._oldest is not None
            and self.clock() - self._oldest >= self.max_wait_s
        ):
            self.flush(reason="deadline")
            return True
        return False

    def flush(self, reason: str = "explicit") -> int:
        """Run the batch function over everything queued; returns row count."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue, []
        self._oldest = None
        payloads = [payload for payload, _ in batch]
        try:
            results = self.batch_fn(payloads)
            if len(results) != len(payloads):
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
        except BaseException as error:
            # The flush trigger's caller sees the raise; every co-batched
            # handle records it so its result() re-raises too.
            for _, pending in batch:
                pending._fail(error)
            raise
        for (_, pending), result in zip(batch, results):
            pending._resolve(result)
        self.stats.flushes += 1
        self.stats.rows_flushed += len(payloads)
        self.stats.max_batch = max(self.stats.max_batch, len(payloads))
        self.stats.flush_reasons[reason] = (
            self.stats.flush_reasons.get(reason, 0) + 1
        )
        return len(payloads)
