"""Micro-batching: coalesce single-row requests into vectorized batches.

Every predictor in :mod:`repro.ml` is vectorized over rows, so the cost
of a predict call is dominated by per-call overhead (feature assembly,
one-hot allocation, tree routing setup) amortised over the batch.  A
:class:`MicroBatcher` exploits that: callers ``submit()`` individual
rows and receive a :class:`PendingPrediction` handle; the batcher runs
the underlying batch function once per *batch*, flushing when

- the batch reaches ``max_batch_size`` rows (flushed inline in the
  submitting thread), or
- the oldest queued row has waited ``max_wait_s`` (enforced by a
  background deadline-flusher thread, so the deadline holds even when
  no further ``submit``/``poll`` arrives), or
- a caller forces it (``flush()``, or — in inline mode —
  ``PendingPrediction.result()`` on a still-queued row).

The batcher is thread-safe: any number of threads may ``submit``
concurrently, the queue and all statistics are guarded by one lock, and
the batch function itself always runs *outside* the lock so a slow
model never blocks enqueueing.  Results are delivered strictly in
submission order within each batch.

For deterministic single-threaded tests, construct with
``background_flush=False``: no flusher thread is started, the deadline
is checked inline on ``submit``/``poll`` (the pre-concurrency
semantics), and ``PendingPrediction.result()`` forces a whole-queue
flush instead of blocking.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

import numpy as np
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeadlineExceededError, ServerOverloadedError
from repro.obs import MetricsRegistry


def _chained_copy(error: BaseException) -> BaseException:
    """A per-handle copy of a batch failure, chained from the original.

    Every co-batched handle re-raises its failure from ``result()``,
    and each ``raise`` mutates the raised object's ``__traceback__`` —
    so handing the *same* exception instance to every handle lets
    concurrent claimers race on one traceback chain.  Each handle gets
    its own instance instead, with ``__cause__`` pointing at the
    original (which keeps the batch thread's traceback intact).
    """
    try:
        copy = type(error)(*error.args)
    # Exception types whose constructors don't round-trip ``args`` fall
    # back to a typed wrapper; the original still rides along as the
    # cause.  # repro: lint-ignore[exception-hygiene]
    except Exception:
        copy = RuntimeError(f"{type(error).__name__}: {error}")
    copy.__cause__ = error
    return copy


class PendingPrediction:
    """A handle to a submitted row's eventual prediction.

    Deliberately cheap to construct — one is allocated per submitted
    row on the hot path, so delivery blocking is coordinated through
    the batcher's shared condition rather than a per-handle event.
    """

    __slots__ = ("_batcher", "_result", "_error", "_done")

    def __init__(self, batcher: "MicroBatcher"):
        self._batcher = batcher
        self._result: Any = None
        self._error: BaseException | None = None
        self._done = False

    def done(self) -> bool:
        """Whether the prediction has been computed (or failed)."""
        return self._done

    def result(self, timeout: float | None = None) -> Any:
        """The prediction, blocking until the row's batch has run.

        With a background flusher the call waits on the batcher's
        delivery condition, notified by whichever thread runs the batch
        (flusher, size-triggered submitter, or worker pool); in inline
        mode, or when no deadline thread exists to ever deliver the
        row, the call first forces a flush of the whole queue so a
        result can always be claimed, then waits out any batch another
        thread already has in flight.

        If the batch call failed, every co-batched handle re-raises the
        failure here — a lost prediction is never silently ``None``.

        Raises
        ------
        TimeoutError
            If ``timeout`` seconds elapse while waiting for another
            thread to deliver the batch.  A forced flush executes the
            batch function in *this* thread, and that execution is not
            interruptible by ``timeout``.
        """
        if not self._done:
            self._batcher._claim(self, timeout)
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, value: Any) -> None:
        self._result = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True


@dataclass
class BatcherStats:
    """Accounting for flush behaviour; exposed via server stats.

    A point-in-time snapshot view over the batcher's registry-backed
    metrics (``serving.batcher.*``).  ``flushes``/``rows_flushed``
    count *successful* batch runs only; failed runs are accounted
    separately in ``failed_flushes``/``rows_failed`` (with the raising
    exception type tallied in ``failure_reasons``), so once in-flight
    batches complete, ``submitted`` reconciles against ``rows_flushed +
    rows_failed + len(queue)`` — rows detached into a batch that is
    still executing are transiently in neither bucket.
    """

    submitted: int = 0
    flushes: int = 0
    rows_flushed: int = 0
    flush_reasons: dict[str, int] = field(default_factory=dict)
    max_batch: int = 0
    failed_flushes: int = 0
    rows_failed: int = 0
    failure_reasons: dict[str, int] = field(default_factory=dict)
    shed_requests: int = 0
    deadline_expired: int = 0
    rows_quarantined: int = 0

    @property
    def mean_batch(self) -> float:
        """Average rows per flushed batch (0.0 before any flush)."""
        return self.rows_flushed / self.flushes if self.flushes else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (fields plus derived means)."""
        return {
            "submitted": self.submitted,
            "flushes": self.flushes,
            "rows_flushed": self.rows_flushed,
            "flush_reasons": dict(self.flush_reasons),
            "max_batch": self.max_batch,
            "mean_batch": self.mean_batch,
            "failed_flushes": self.failed_flushes,
            "rows_failed": self.rows_failed,
            "failure_reasons": dict(self.failure_reasons),
            "shed_requests": self.shed_requests,
            "deadline_expired": self.deadline_expired,
            "rows_quarantined": self.rows_quarantined,
        }


class MicroBatcher:
    """Coalesces submitted rows and runs a batch function over them.

    Parameters
    ----------
    batch_fn:
        Called with the list of queued payloads; must return one result
        per payload, in order.  May be called concurrently from several
        threads (the submitting thread on a size trigger, the flusher
        thread on a deadline), so it must itself be thread-safe.
    max_batch_size:
        Queue length that triggers an inline flush on ``submit``.
    max_wait_s:
        Maximum age of the oldest queued payload before a deadline
        flush (0 degenerates to flushing on every submit; ``None``
        disables the deadline, leaving only the size trigger and
        explicit flushes).
    clock:
        Injectable monotonic clock, for deterministic tests.  Only
        honoured for deadline *checks*; the background flusher sleeps in
        real time, so tests that drive a fake clock should pass
        ``background_flush=False``.
    background_flush:
        When true (the default) and ``max_wait_s`` is set, a daemon
        thread enforces the deadline.  When false, deadlines are only
        checked inline on ``submit``/``poll`` and ``result()`` forces a
        flush — the deterministic, single-threaded semantics.
    registry:
        Metrics registry backing the ``serving.batcher.*`` metrics and
        the ``serving.latency.queue_wait_s`` / ``serving.latency.request_s``
        histograms.  A :class:`~repro.serving.server.PredictionServer`
        passes its own, so per-stage serving latency lands in one
        snapshot.  ``None`` keeps a private registry.
    max_queue_rows:
        Admission bound: a ``submit`` arriving with this many rows
        already queued is *shed* — counted as ``serving.shed_requests``
        and rejected with
        :class:`~repro.errors.ServerOverloadedError` without being
        enqueued, so accepted rows keep a bounded queue wait (the
        backpressure an HTTP frontend would surface as 429).  ``None``
        (the default) admits everything.
    quarantine:
        When true, a failing batch is bisected into micro-batches so a
        predict exception poisons only the offending rows: good rows
        still resolve, each poisoned row's handle fails with the
        model's own error (tallied as
        ``serving.batcher.rows_quarantined``), and the batcher — and
        the server above it — survives.  When false (the default), a
        batch failure fails every co-batched handle, the pre-existing
        all-or-nothing semantics.
    """

    #: Per-reason flush/failure tallies live under these metric prefixes.
    _FLUSH_REASON_PREFIX = "serving.batcher.flush_reason."
    _FAILURE_REASON_PREFIX = "serving.batcher.failure_reason."

    def __init__(
        self,
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        max_batch_size: int = 64,
        max_wait_s: float | None = 0.005,
        clock: Callable[[], float] = time.monotonic,
        background_flush: bool = True,
        registry: MetricsRegistry | None = None,
        max_queue_rows: int | None = None,
        quarantine: bool = False,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s is not None and max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue_rows is not None and max_queue_rows < 1:
            raise ValueError(
                f"max_queue_rows must be >= 1, got {max_queue_rows}"
            )
        self.batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue_rows = max_queue_rows
        self.quarantine = quarantine
        self.clock = clock
        self.background_flush = background_flush
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._submitted = self.metrics.counter("serving.batcher.submitted")
        self._flushes = self.metrics.counter("serving.batcher.flushes")
        self._rows_flushed = self.metrics.counter("serving.batcher.rows_flushed")
        self._failed_flushes = self.metrics.counter(
            "serving.batcher.failed_flushes"
        )
        self._rows_failed = self.metrics.counter("serving.batcher.rows_failed")
        self._shed = self.metrics.counter("serving.shed_requests")
        self._deadline_expired = self.metrics.counter(
            "serving.batcher.deadline_expired"
        )
        self._quarantined = self.metrics.counter(
            "serving.batcher.rows_quarantined"
        )
        self._batch_rows = self.metrics.gauge("serving.batcher.batch_rows")
        self._queue_depth = self.metrics.gauge("serving.batcher.queue_depth")
        self._queue_wait = self.metrics.histogram("serving.latency.queue_wait_s")
        self._request_latency = self.metrics.histogram(
            "serving.latency.request_s"
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        # Delivery signal for blocking result() calls: notified once per
        # completed batch (success or failure), on its own lock so
        # waiters never contend with submitters.
        self._delivered = threading.Condition()
        # Each entry carries its submission time (per self.clock), so a
        # flush can account the row's full queue wait, and an optional
        # absolute deadline (same clock) after which the row expires.
        self._queue: list[
            tuple[Any, PendingPrediction, float, float | None]
        ] = []
        # Human-readable description of the most recent batch failure,
        # folded into result() timeout messages so an operator can tell
        # a wedged flusher from a failing model.  A bare string
        # assignment: last-writer-wins is exactly the semantics wanted.
        self._last_failure: str | None = None
        # Submissions since the last flush, tallied as a plain int under
        # the already-held queue lock; ``_take_locked`` folds them into
        # the ``serving.batcher.submitted`` counter in one ``inc``, so
        # the hot path pays no per-row metric call.  Rows only leave the
        # queue through ``_take_locked``, so a non-empty queue is the
        # only state in which this is non-zero.
        self._new_submits = 0
        self._oldest: float | None = None
        self._closed = False
        self._flusher: threading.Thread | None = None
        if background_flush and max_wait_s is not None:
            self._flusher = threading.Thread(
                target=self._flush_loop,
                name="microbatcher-deadline-flusher",
                daemon=True,
            )
            self._flusher.start()

    @property
    def stats(self) -> BatcherStats:
        """Point-in-time snapshot of the registry-backed metrics."""
        return BatcherStats(
            submitted=self._submitted.value + self._new_submits,
            flushes=self._flushes.value,
            rows_flushed=self._rows_flushed.value,
            flush_reasons=self._reasons(self._FLUSH_REASON_PREFIX),
            max_batch=int(self._batch_rows.high_water),
            failed_flushes=self._failed_flushes.value,
            rows_failed=self._rows_failed.value,
            failure_reasons=self._reasons(self._FAILURE_REASON_PREFIX),
            shed_requests=self._shed.value,
            deadline_expired=self._deadline_expired.value,
            rows_quarantined=self._quarantined.value,
        )

    def _reasons(self, prefix: str) -> dict[str, int]:
        """Non-zero per-reason tallies registered under ``prefix``."""
        reasons = {}
        for name in self.metrics.names():
            if name.startswith(prefix):
                count = self.metrics.counter(name).value
                if count:
                    reasons[name[len(prefix):]] = count
        return reasons

    def _count_reason(self, prefix: str, reason: str) -> None:
        self.metrics.counter(prefix + reason).inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def submit(
        self, payload: Any, deadline_s: float | None = None
    ) -> PendingPrediction:
        """Queue one row; may flush inline if a trigger fires.

        Thread-safe; the batch function runs outside the lock, so other
        submitters are never blocked behind a running batch.

        Parameters
        ----------
        payload:
            The row to predict.
        deadline_s:
            Per-request deadline, relative to now.  A row whose
            deadline passes before its batch runs is dropped at flush
            time: its handle fails with
            :class:`~repro.errors.DeadlineExceededError` instead of
            returning an answer that arrived too late to use.

        Raises
        ------
        ServerOverloadedError
            If the admission queue already holds ``max_queue_rows``
            rows.  The payload was *not* enqueued; retrying after a
            backoff is safe.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        pending = PendingPrediction(self)
        batch = None
        now = self.clock()
        expires = None if deadline_s is None else now + deadline_s
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            if (
                self.max_queue_rows is not None
                and len(self._queue) >= self.max_queue_rows
            ):
                self._shed.inc()
                raise ServerOverloadedError(
                    f"admission queue full ({len(self._queue)} rows >= "
                    f"max_queue_rows {self.max_queue_rows}); request shed"
                )
            self._new_submits += 1
            if self._oldest is None:
                self._oldest = now
            self._queue.append((payload, pending, now, expires))
            if len(self._queue) >= self.max_batch_size:
                batch = self._take_locked()
            elif self._flusher is not None and len(self._queue) == 1:
                # Wake the deadline flusher for the new oldest row.
                self._wakeup.notify_all()
        if batch is not None:
            self._run_batch(batch, reason="size", reraise=True)
        elif self._flusher is None:
            self._flush_if_stale()
        return pending

    def poll(self) -> bool:
        """Flush if the oldest queued row exceeded ``max_wait_s``.

        Returns whether a flush happened.  With a background flusher
        this is never required, but callers with idle loops may still
        use it to bound latency below the flusher's wake-up jitter.
        """
        return self._flush_if_stale()

    def flush(self, reason: str = "explicit") -> int:
        """Run the batch function over everything queued; returns row count."""
        with self._lock:
            batch = self._take_locked()
        if batch is None:
            return 0
        self._run_batch(batch, reason=reason, reraise=True)
        return len(batch)

    def close(self, flush: bool = True) -> None:
        """Stop the deadline flusher and (by default) drain the queue.

        Idempotent.  Further ``submit`` calls raise.  With ``flush``
        (the default) queued rows run through the batch function one
        last time; with ``flush=False`` they are *failed* instead —
        either way no handle is left permanently pending, so a blocked
        ``result()`` always wakes.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
        if flush:
            self.flush(reason="close")
            return
        with self._lock:
            batch = self._take_locked()
        if batch is not None:
            error = RuntimeError(
                f"MicroBatcher closed with {len(batch)} unflushed rows "
                f"(close(flush=False))"
            )
            self._failed_flushes.inc()
            self._rows_failed.inc(len(batch))
            self._count_reason(self._FAILURE_REASON_PREFIX, "RuntimeError")
            for _, pending, *_ in batch:
                pending._fail(_chained_copy(error))
            with self._delivered:
                self._delivered.notify_all()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _take_locked(
        self,
    ) -> list[tuple[Any, PendingPrediction, float, float | None]] | None:
        """Detach the current queue (caller holds the lock)."""
        if self._new_submits:
            self._submitted.inc(self._new_submits)
            self._new_submits = 0
        if not self._queue:
            return None
        # Occupancy sampled at the flush boundary: the gauge reads as
        # "rows coalesced by the last flush", its high-water mark as the
        # deepest the queue ever got before a trigger fired.
        self._queue_depth.set(len(self._queue))
        batch, self._queue = self._queue, []
        self._oldest = None
        return batch

    def _claim(self, pending: PendingPrediction, timeout: float | None) -> None:
        """Deliver ``pending``: wait for its batch, forcing one if needed.

        Without a deadline-flusher thread nothing else is guaranteed to
        ever run the row's batch, so the queue is flushed here first.
        That flush can be a no-op when another thread has already
        detached the row into an in-flight batch — either way, delivery
        is then awaited on the shared condition, which ``_run_batch``
        notifies unconditionally, so a still-pending handle never reads
        its unset result.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if (self._flusher is None or self._closed) and not pending._done:
            # No live thread will ever deliver this row (never had a
            # flusher, or close() already stopped it): run the queue
            # through in this thread.
            self.flush(reason="forced")
        with self._delivered:
            while not pending._done:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    # Fold in the failure accounting so an operator can
                    # tell a wedged flusher from a failing model.
                    failed = self._failed_flushes.value
                    if failed:
                        health = (
                            f"{failed} failed flush(es) so far, last "
                            f"failure: {self._last_failure}"
                        )
                    else:
                        health = "no failed flushes so far"
                    raise TimeoutError(
                        f"prediction not delivered within {timeout} s "
                        f"(deadline flusher wedged, or timeout < "
                        f"max_wait_s {self.max_wait_s}; {health})"
                    )
                self._delivered.wait(remaining)

    def _flush_if_stale(self) -> bool:
        with self._lock:
            stale = (
                bool(self._queue)
                and self.max_wait_s is not None
                and self._oldest is not None
                and self.clock() - self._oldest >= self.max_wait_s
            )
            batch = self._take_locked() if stale else None
        if batch is None:
            return False
        self._run_batch(batch, reason="deadline", reraise=True)
        return True

    def _flush_loop(self) -> None:
        """Deadline enforcement: sleep until the oldest row expires."""
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed:
                    return
                remaining = self._oldest + self.max_wait_s - self.clock()
                while remaining > 0 and self._queue and not self._closed:
                    self._wakeup.wait(timeout=remaining)
                    if not self._queue:
                        break  # a size/explicit flush beat the deadline
                    remaining = self._oldest + self.max_wait_s - self.clock()
                if self._closed:
                    return
                batch = self._take_locked()
            if batch is not None:
                # Errors are recorded on every handle (result() re-raises
                # them); the daemon thread itself must survive them.
                self._run_batch(batch, reason="deadline", reraise=False)

    def _expire_rows(
        self,
        batch: list[tuple[Any, PendingPrediction, float, float | None]],
        flushed_at: float,
    ) -> list[tuple[Any, PendingPrediction, float, float | None]]:
        """Drop rows whose deadline passed; returns the live remainder.

        An expired row is failed with
        :class:`~repro.errors.DeadlineExceededError` *before* the batch
        function runs, so its prediction is never computed — the whole
        point of a deadline is not spending capacity on an answer the
        caller has already given up on.
        """
        live = []
        expired = []
        for entry in batch:
            _, _, _, expires = entry
            if expires is not None and flushed_at >= expires:
                expired.append(entry)
            else:
                live.append(entry)
        if expired:
            self._deadline_expired.inc(len(expired))
            self._rows_failed.inc(len(expired))
            self._count_reason(
                self._FAILURE_REASON_PREFIX, "DeadlineExceededError"
            )
            for _, pending, submitted_at, expires in expired:
                pending._fail(
                    DeadlineExceededError(
                        f"deadline expired {flushed_at - expires:.4f} s "
                        f"before the batch ran (queued for "
                        f"{flushed_at - submitted_at:.4f} s)"
                    )
                )
            with self._delivered:
                self._delivered.notify_all()
        return live

    def _bisect(
        self, payloads: list[Any]
    ) -> tuple[list[Any], dict[int, BaseException]]:
        """Run ``batch_fn`` isolating failures to the offending rows.

        Recursive micro-batch bisection: a failing range is split in
        half and each half retried, down to single rows — so ``k``
        poisoned rows in a batch of ``n`` cost ``O(k log n)`` extra
        batch calls, not ``n`` singleton calls.  Returns the results
        (aligned with ``payloads``, ``None`` where failed) and the
        per-index errors.
        """
        try:
            results = self.batch_fn(payloads)
            if len(results) != len(payloads):
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
            return list(results), {}
        # Quarantine-by-bisection: the error is returned as data so
        # the poisoned row's future receives it while its batchmates
        # still get answers.  # repro: lint-ignore[exception-hygiene]
        except BaseException as error:
            if len(payloads) == 1:
                return [None], {0: error}
            mid = len(payloads) // 2
            left, left_errors = self._bisect(payloads[:mid])
            right, right_errors = self._bisect(payloads[mid:])
            errors = dict(left_errors)
            errors.update(
                (index + mid, err) for index, err in right_errors.items()
            )
            return left + right, errors

    def _run_batch(
        self,
        batch: list[tuple[Any, PendingPrediction, float, float | None]],
        reason: str,
        reraise: bool,
    ) -> None:
        """Execute ``batch_fn`` outside the lock; account and deliver."""
        flushed_at = self.clock()
        # One float array of submission times serves both latency
        # histograms; the subtraction is vectorized and observe_many
        # parks the result in one append, so per-row accounting costs
        # the batch almost nothing.
        submitted_times = np.fromiter(
            (submitted_at for _, _, submitted_at, _ in batch),
            np.float64,
            len(batch),
        )
        self._queue_wait.observe_many(flushed_at - submitted_times)
        batch = self._expire_rows(batch, flushed_at)
        if not batch:
            return
        submitted_times = np.fromiter(
            (submitted_at for _, _, submitted_at, _ in batch),
            np.float64,
            len(batch),
        )
        payloads = [payload for payload, _, _, _ in batch]
        try:
            results = self.batch_fn(payloads)
            if len(results) != len(payloads):
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
        except BaseException as error:
            self._failed_flushes.inc()
            self._last_failure = f"{type(error).__name__}: {error}"
            if self.quarantine:
                self._quarantine_batch(batch, payloads, reason)
                return
            self._rows_failed.inc(len(payloads))
            self._count_reason(
                self._FAILURE_REASON_PREFIX, type(error).__name__
            )
            # The flush trigger's caller sees the raise (when there is
            # one); every co-batched handle records its own chained
            # copy so concurrent result() re-raises never share (and
            # race on) one traceback.
            for _, pending, *_ in batch:
                pending._fail(_chained_copy(error))
            with self._delivered:
                self._delivered.notify_all()
            if reraise:
                raise
            return
        for (_, pending, _, _), result in zip(batch, results):
            pending._resolve(result)
        with self._delivered:
            self._delivered.notify_all()
        # End-to-end latency: submit → result delivered, per payload —
        # queue wait *and* batch execution, the number the old
        # mean_latency_ms silently under-reported.
        delivered_at = self.clock()
        self._request_latency.observe_many(delivered_at - submitted_times)
        self._flushes.inc()
        self._rows_flushed.inc(len(payloads))
        self._batch_rows.set(len(payloads))
        self._count_reason(self._FLUSH_REASON_PREFIX, reason)

    def _quarantine_batch(
        self,
        batch: list[tuple[Any, PendingPrediction, float, float | None]],
        payloads: list[Any],
        reason: str,
    ) -> None:
        """Recover a failed batch by bisecting around the poisoned rows.

        Good rows resolve normally (counted as a flush); each poisoned
        row's handle fails with the model's own error and is tallied as
        quarantined.  Never re-raises — surviving is the point.
        """
        results, errors = self._bisect(payloads)
        self._quarantined.inc(len(errors))
        self._rows_failed.inc(len(errors))
        reasons = {type(err).__name__ for err in errors.values()}
        for name in sorted(reasons):
            self._count_reason(self._FAILURE_REASON_PREFIX, name)
        delivered = 0
        for index, (entry, result) in enumerate(zip(batch, results)):
            _, pending, _, _ = entry
            if index in errors:
                pending._fail(errors[index])
            else:
                pending._resolve(result)
                delivered += 1
        with self._delivered:
            self._delivered.notify_all()
        if delivered:
            self._flushes.inc()
            self._rows_flushed.inc(delivered)
            self._batch_rows.set(delivered)
            self._count_reason(self._FLUSH_REASON_PREFIX, reason)
