"""Online inference: serve join-avoidance models off the fact table.

The offline layers decide *whether* a KFK join is safe to avoid; this
subpackage operationalises the answer.  A trained pipeline is exported
as a versioned :class:`ModelArtifact` (fitted model + strategy + feature
order + schema fingerprint + advisor verdicts), loaded into a
:class:`PredictionServer`, and served straight off fact rows: the
:class:`FeatureService` replays the strategy with cached dimension
indexes (avoided dimensions are never touched), and the
:class:`MicroBatcher` coalesces single-row requests into vectorized
batches.

The runtime is thread-safe: concurrent request threads share one
server, a background deadline flusher bounds queueing latency, the
dimension-index cache builds each cold entry exactly once under racing
access, and ``PredictionServer(..., workers=N)`` shards flushed batches
across a predict worker pool without changing any per-row result.

Typical flow::

    pipeline = fit_pipeline(dataset, "dt_gini", no_join_strategy())
    artifact = artifact_from_pipeline(pipeline, dataset.schema)
    save_artifact(artifact, "churn.repro-model")
    ...
    server = PredictionServer(load_artifact("churn.repro-model"), schema)
    server.predict_one({"Gender": "F", "Age": "old", "Employer": "acme"})
"""

from repro.serving.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ModelArtifact,
    artifact_from_pipeline,
    load_artifact,
    read_manifest,
    save_artifact,
    schema_fingerprint,
)
from repro.serving.batcher import BatcherStats, MicroBatcher, PendingPrediction
from repro.serving.benchmark import (
    ConcurrencyReport,
    ThroughputReport,
    concurrent_serving_throughput,
    serving_throughput,
)
from repro.serving.feature_service import (
    CacheStats,
    DimensionIndexCache,
    FeatureService,
)
from repro.serving.server import PredictionServer, ServerStats

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "BatcherStats",
    "CacheStats",
    "ConcurrencyReport",
    "DimensionIndexCache",
    "FeatureService",
    "MicroBatcher",
    "ModelArtifact",
    "PendingPrediction",
    "PredictionServer",
    "ServerStats",
    "ThroughputReport",
    "artifact_from_pipeline",
    "concurrent_serving_throughput",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "schema_fingerprint",
    "serving_throughput",
]
