"""The in-process prediction server facade.

:class:`PredictionServer` ties the serving subsystem together: it loads
a :class:`~repro.serving.artifacts.ModelArtifact` against a live star
schema (verifying the schema fingerprint), builds a
:class:`~repro.serving.feature_service.FeatureService` for the
artifact's strategy, and exposes three serving styles:

- ``predict_one(row)`` — the low-latency single-row path,
- ``predict_batch(rows)`` — a caller-assembled batch,
- ``submit(row)`` — the high-throughput micro-batched path, returning a
  :class:`~repro.serving.batcher.PendingPrediction`.

Requests are plain ``{fact column: label}`` mappings — the shape a fact
row has *before* any join, which is the whole point: under a NoJoin
artifact the server answers without touching a single dimension table.
Request counters and latency accounting are kept per server and
surfaced via :meth:`PredictionServer.stats`.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import StarSchema
from repro.relational.table import Table
from repro.serving.artifacts import ModelArtifact
from repro.serving.batcher import MicroBatcher, PendingPrediction
from repro.serving.feature_service import FeatureService


@dataclass(frozen=True)
class ServerStats:
    """A point-in-time snapshot of a server's counters."""

    requests: int
    rows: int
    predict_calls: int
    assemble_seconds: float
    predict_seconds: float
    batches_flushed: int
    mean_batch_rows: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end model-side latency per predict call, in ms."""
        if not self.predict_calls:
            return 0.0
        total = self.assemble_seconds + self.predict_seconds
        return 1000.0 * total / self.predict_calls

    def __str__(self) -> str:
        return (
            f"requests={self.requests} rows={self.rows} "
            f"predict_calls={self.predict_calls} "
            f"mean_latency={self.mean_latency_ms:.3f}ms "
            f"mean_batch={self.mean_batch_rows:.1f} "
            f"cache_hit_rate={self.cache_hit_rate:.1%}"
        )


class PredictionServer:
    """Serve predictions from a loaded model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`ModelArtifact`.
    schema:
        The live star schema to serve against.  Its fingerprint must
        match the artifact's training schema unless
        ``validate_fingerprint=False``.  Fingerprints cover structure
        and closed domains only — dimension *rows* may change freely —
        so disabling the check is rarely the right fix.
    cache_capacity:
        Dimension-index cache capacity of the feature service.
    max_batch_size, max_wait_s:
        Micro-batcher configuration for the ``submit`` path.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        schema: StarSchema,
        cache_capacity: int = 8,
        max_batch_size: int = 64,
        max_wait_s: float | None = 0.005,
        validate_fingerprint: bool = True,
    ):
        if validate_fingerprint:
            artifact.check_schema(schema)
        self.artifact = artifact
        self.schema = schema
        self.features = FeatureService(
            schema, artifact.strategy, cache_capacity=cache_capacity
        )
        if self.features.feature_names != artifact.feature_names:
            raise SchemaError(
                f"strategy replay produced features "
                f"{list(self.features.feature_names)} but the artifact was "
                f"trained on {list(artifact.feature_names)}"
            )
        self.batcher = MicroBatcher(
            self._predict_encoded,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
        )
        self._requests = 0
        self._rows = 0
        self._predict_calls = 0
        self._assemble_seconds = 0.0
        self._predict_seconds = 0.0

    # ------------------------------------------------------------------
    # Prediction paths
    # ------------------------------------------------------------------
    def predict_one(self, row: Mapping[str, object]) -> object:
        """Predict a single request row immediately (low-latency path)."""
        self._requests += 1
        return self._predict_encoded([self.features.encode_requests([row])])[0]

    def predict_batch(self, rows: Sequence[Mapping[str, object]]) -> list:
        """Predict a caller-assembled batch of request rows."""
        if not rows:
            return []
        self._requests += 1
        return self._predict_encoded([self.features.encode_requests(rows)])

    def predict_table(self, fact_rows: Table) -> list:
        """Predict for pre-encoded rows shaped like the fact table."""
        self._requests += 1
        codes = {
            column: fact_rows.codes(column)
            for column in self.features.required_columns
        }
        return self._predict_encoded([codes])

    def submit(self, row: Mapping[str, object]) -> PendingPrediction:
        """Queue one row on the micro-batcher (high-throughput path)."""
        self._requests += 1
        return self.batcher.submit(self.features.encode_requests([row]))

    def flush(self) -> int:
        """Force the micro-batcher to drain; returns rows flushed."""
        return self.batcher.flush()

    def poll(self) -> bool:
        """Flush the micro-batcher if its wait deadline expired."""
        return self.batcher.poll()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _predict_encoded(
        self, payloads: Sequence[Mapping[str, np.ndarray]]
    ) -> list:
        """Assemble and predict a batch of encoded column-dicts.

        Payloads are concatenated into one matrix, predicted in a single
        vectorized call, and the decoded labels split back per payload
        row — this is the function the micro-batcher amortises.
        """
        if len(payloads) == 1:
            merged = payloads[0]
        else:
            merged = {
                column: np.concatenate(
                    [np.asarray(p[column]) for p in payloads]
                )
                for column in self.features.required_columns
            }
        started = time.perf_counter()
        X = self.features.assemble(merged)
        assembled = time.perf_counter()
        codes = self.artifact.predict_codes(X)
        finished = time.perf_counter()
        self._assemble_seconds += assembled - started
        self._predict_seconds += finished - assembled
        self._predict_calls += 1
        self._rows += X.n_rows
        return self.artifact.decode_labels(codes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """Snapshot request counters, latency and cache accounting."""
        cache = self.features.cache.stats
        batcher = self.batcher.stats
        return ServerStats(
            requests=self._requests,
            rows=self._rows,
            predict_calls=self._predict_calls,
            assemble_seconds=self._assemble_seconds,
            predict_seconds=self._predict_seconds,
            batches_flushed=batcher.flushes,
            mean_batch_rows=batcher.mean_batch,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=cache.hit_rate,
        )

    def __repr__(self) -> str:
        return (
            f"PredictionServer({self.artifact.summary()}, "
            f"{self.stats()})"
        )
