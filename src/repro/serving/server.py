"""The in-process prediction server facade.

:class:`PredictionServer` ties the serving subsystem together: it loads
a :class:`~repro.serving.artifacts.ModelArtifact` against a live star
schema (verifying the schema fingerprint), builds a
:class:`~repro.serving.feature_service.FeatureService` for the
artifact's strategy, and exposes three serving styles:

- ``predict_one(row)`` — the low-latency single-row path,
- ``predict_batch(rows)`` — a caller-assembled batch,
- ``submit(row)`` — the high-throughput micro-batched path, returning a
  :class:`~repro.serving.batcher.PendingPrediction`.

Requests are plain ``{fact column: label}`` mappings — the shape a fact
row has *before* any join, which is the whole point: under a NoJoin
artifact the server answers without touching a single dimension table.

The server is thread-safe end to end: any number of request threads may
call the three paths concurrently.  Request counters and latency
accounting are guarded by a lock, the micro-batcher is the thread-safe
:class:`~repro.serving.batcher.MicroBatcher` (with a background
deadline flusher unless ``background_flush=False``), and the dimension
index cache builds each cold entry exactly once however many threads
race on it.  With ``workers > 1`` every flushed micro-batch is sharded
into contiguous chunks predicted concurrently on a worker pool; the
predict kernels are read-only over the fitted model, and chunking never
changes per-row results, so concurrent predictions are identical to
single-threaded ones.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaError
from repro.obs import MetricsRegistry
from repro.relational.schema import StarSchema
from repro.relational.table import Table
from repro.serving.artifacts import ModelArtifact
from repro.serving.batcher import MicroBatcher, PendingPrediction
from repro.serving.feature_service import FeatureService

#: The per-stage serving latency histograms a server maintains, as
#: (stage key, metric name) pairs; :meth:`ServerStats.as_dict` and the
#: benchmarks report all four.
LATENCY_STAGES = (
    ("queue_wait", "serving.latency.queue_wait_s"),
    ("assemble", "serving.latency.assemble_s"),
    ("predict", "serving.latency.predict_s"),
    ("request", "serving.latency.request_s"),
)


@dataclass(frozen=True)
class ServerStats:
    """A point-in-time snapshot of a server's counters.

    Built from the server's metrics registry; ``latency_ms`` carries
    the per-stage breakdown (``queue_wait``/``assemble``/``predict``
    and end-to-end ``request``), each stage a dict with ``mean``,
    ``p50``, ``p95``, ``p99`` and ``count`` — milliseconds throughout.
    """

    requests: int
    rows: int
    predict_calls: int
    assemble_seconds: float
    predict_seconds: float
    batches_flushed: int
    mean_batch_rows: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    failed_flushes: int = 0
    rows_failed: int = 0
    workers: int = 1
    queue_wait_seconds: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    shed_requests: int = 0
    deadline_expired: int = 0
    rows_quarantined: int = 0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency per predict call, in ms.

        Includes the time micro-batched rows spent queued before their
        flush — an earlier version summed only assemble + predict time,
        silently under-reporting the latency a ``submit()`` caller
        actually observed.
        """
        if not self.predict_calls:
            return 0.0
        total = (
            self.assemble_seconds
            + self.predict_seconds
            + self.queue_wait_seconds
        )
        return 1000.0 * total / self.predict_calls

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (fields plus derived means)."""
        return {
            "requests": self.requests,
            "rows": self.rows,
            "predict_calls": self.predict_calls,
            "assemble_seconds": self.assemble_seconds,
            "predict_seconds": self.predict_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "mean_latency_ms": self.mean_latency_ms,
            "batches_flushed": self.batches_flushed,
            "mean_batch_rows": self.mean_batch_rows,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "failed_flushes": self.failed_flushes,
            "rows_failed": self.rows_failed,
            "shed_requests": self.shed_requests,
            "deadline_expired": self.deadline_expired,
            "rows_quarantined": self.rows_quarantined,
            "workers": self.workers,
            "latency_ms": {
                stage: dict(values)
                for stage, values in self.latency_ms.items()
            },
        }

    def __str__(self) -> str:
        return (
            f"requests={self.requests} rows={self.rows} "
            f"predict_calls={self.predict_calls} "
            f"mean_latency={self.mean_latency_ms:.3f}ms "
            f"mean_batch={self.mean_batch_rows:.1f} "
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"workers={self.workers} failed_flushes={self.failed_flushes}"
        )


class PredictionServer:
    """Serve predictions from a loaded model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`ModelArtifact`.
    schema:
        The live star schema to serve against.  Its fingerprint must
        match the artifact's training schema unless
        ``validate_fingerprint=False``.  Fingerprints cover structure
        and closed domains only — dimension *rows* may change freely —
        so disabling the check is rarely the right fix.
    cache_capacity:
        Dimension-index cache capacity of the feature service.
    max_batch_size, max_wait_s:
        Micro-batcher configuration for the ``submit`` path.
    workers:
        Predict threads per flushed micro-batch.  ``1`` (the default)
        predicts in the flushing thread; ``N > 1`` shards each batch
        into up to ``N`` contiguous chunks run on a thread pool.  Size
        the pool to the core count — the assembly/predict kernels are
        numpy-heavy and release the GIL in their inner loops, so extra
        workers beyond the cores only add scheduling overhead.
    process_workers:
        Size of the process-sharded predictor pool (the GIL-free
        execution tier).  ``0`` (the default) predicts in this process;
        ``N > 0`` partitions every flushed micro-batch into contiguous
        chunks dispatched across ``N`` predictor processes, each
        holding its own copy of the artifact and feature service, with
        per-worker telemetry merged back on :meth:`stats`.  Mutually
        exclusive with ``workers > 1`` — one execution tier per server.
    background_flush:
        Passed to the :class:`MicroBatcher`; set false for
        deterministic tests that control flushing explicitly.
    telemetry:
        When true (the default) the server keeps one metrics registry —
        request counters, cache accounting, and the per-stage latency
        histograms — shared by its feature service and micro-batcher.
        ``telemetry=False`` swaps in a disabled registry: instrumented
        code runs with no-op metrics, and :meth:`stats` reports zeros.
        This is the off-switch the overhead benchmark measures against.
    max_queue_rows:
        Admission bound on the ``submit`` path: with this many rows
        already queued, further submissions are shed with
        :class:`~repro.errors.ServerOverloadedError` (counted as
        ``serving.shed_requests``) instead of growing the queue without
        bound.  ``None`` (the default) admits everything.
    quarantine:
        Enable poisoned-row quarantine on the micro-batcher: a predict
        exception fails only the offending rows (isolated by
        micro-batch bisection), not every co-batched request, and the
        server survives.
    default_deadline_s:
        Default per-request deadline applied by :meth:`submit` when the
        caller passes none; ``None`` (the default) leaves requests
        without a deadline.
    engine:
        Serving execution engine.  ``"implicit"`` (the default) gathers
        each request batch into a :class:`CategoricalMatrix` and calls
        the artifact's own predict path.  ``"factorized"`` assembles
        requests as :class:`~repro.ml.sparse.FactorizedMatrix` and
        scores them through a :class:`~repro.serving.factorized.FactorizedScorer`
        built at load time — every joined dimension's score
        contribution is precomputed per dimension row, so a served
        prediction does no per-row dimension-feature work (supported
        for L1 logistic regression and categorical NB artifacts).
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        schema: StarSchema,
        cache_capacity: int = 8,
        max_batch_size: int = 64,
        max_wait_s: float | None = 0.005,
        validate_fingerprint: bool = True,
        workers: int = 1,
        background_flush: bool = True,
        telemetry: bool = True,
        max_queue_rows: int | None = None,
        quarantine: bool = False,
        default_deadline_s: float | None = None,
        process_workers: int = 0,
        engine: str = "implicit",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if engine not in ("implicit", "factorized"):
            raise ValueError(
                f"serving engine must be 'implicit' or 'factorized', "
                f"got {engine!r}"
            )
        if process_workers < 0:
            raise ValueError(
                f"process_workers must be >= 0, got {process_workers}"
            )
        if process_workers and workers > 1:
            raise ValueError(
                "workers (threads) and process_workers are mutually "
                "exclusive — pick one execution tier per server"
            )
        if validate_fingerprint:
            artifact.check_schema(schema)
        self.artifact = artifact
        self.schema = schema
        self.workers = workers
        self.metrics = MetricsRegistry(enabled=telemetry)
        self.features = FeatureService(
            schema,
            artifact.strategy,
            cache_capacity=cache_capacity,
            registry=self.metrics,
        )
        if self.features.feature_names != artifact.feature_names:
            raise SchemaError(
                f"strategy replay produced features "
                f"{list(self.features.feature_names)} but the artifact was "
                f"trained on {list(artifact.feature_names)}"
            )
        self.engine = engine
        if engine == "factorized":
            # Imported here to keep the default path free of the
            # factorized machinery.
            from repro.serving.factorized import FactorizedScorer

            self._scorer = FactorizedScorer(artifact, self.features)
        else:
            self._scorer = None
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="predict-worker"
            )
            if workers > 1
            else None
        )
        self.process_workers = process_workers
        if process_workers:
            # Imported here: repro.parallel.serving's workers construct
            # a PredictionServer of their own, so a top-level import
            # would be circular.
            from repro.parallel.serving import ProcessPredictorPool

            self._process_pool = ProcessPredictorPool(
                artifact,
                schema,
                workers=process_workers,
                cache_capacity=cache_capacity,
                registry=self.metrics,
                engine=engine,
            )
        else:
            self._process_pool = None
        self.default_deadline_s = default_deadline_s
        self.batcher = MicroBatcher(
            self._predict_encoded,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            background_flush=background_flush,
            registry=self.metrics,
            max_queue_rows=max_queue_rows,
            quarantine=quarantine,
        )
        self._requests = self.metrics.counter("serving.requests")
        self._rows = self.metrics.counter("serving.rows")
        self._assemble_seconds = self.metrics.histogram(
            "serving.latency.assemble_s"
        )
        self._predict_seconds = self.metrics.histogram(
            "serving.latency.predict_s"
        )
        self._request_latency = self.metrics.histogram(
            "serving.latency.request_s"
        )

    # ------------------------------------------------------------------
    # Prediction paths
    # ------------------------------------------------------------------
    def predict_one(self, row: Mapping[str, object]) -> object:
        """Predict a single request row immediately (low-latency path)."""
        self._requests.inc()
        started = time.perf_counter()
        result = self._predict_encoded(
            [self.features.encode_requests([row])]
        )[0]
        self._request_latency.observe(time.perf_counter() - started)
        return result

    def predict_batch(self, rows: Sequence[Mapping[str, object]]) -> list:
        """Predict a caller-assembled batch of request rows."""
        if not rows:
            return []
        self._requests.inc()
        started = time.perf_counter()
        results = self._predict_encoded([self.features.encode_requests(rows)])
        self._request_latency.observe(time.perf_counter() - started)
        return results

    def predict_table(self, fact_rows: Table) -> list:
        """Predict for pre-encoded rows shaped like the fact table."""
        self._requests.inc()
        started = time.perf_counter()
        codes = {
            column: fact_rows.codes(column)
            for column in self.features.required_columns
        }
        results = self._predict_encoded([codes])
        self._request_latency.observe(time.perf_counter() - started)
        return results

    def submit(
        self,
        row: Mapping[str, object],
        deadline_s: float | None = None,
    ) -> PendingPrediction:
        """Queue one row on the micro-batcher (high-throughput path).

        Safe to call from any number of request threads; encoding runs
        in the calling thread, the batch prediction wherever the flush
        trigger fires (submitter, deadline flusher, or worker pool).
        The row's end-to-end submit → delivery latency (queue wait
        included) lands in the shared ``serving.latency.request_s``
        histogram when its batch runs.  Submissions are counted by the
        batcher (``serving.batcher.submitted``) rather than by a second
        counter here — :meth:`stats` folds them back into ``requests``,
        keeping this path at zero per-row metric calls.

        ``deadline_s`` (defaulting to the server's
        ``default_deadline_s``) bounds how stale the row may go: if its
        batch runs after the deadline the handle fails with
        :class:`~repro.errors.DeadlineExceededError`.  When the
        admission queue is full (``max_queue_rows``) the request is
        shed with :class:`~repro.errors.ServerOverloadedError` before
        encoding results are queued.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self.batcher.submit(
            self.features.encode_requests([row]), deadline_s=deadline_s
        )

    def flush(self) -> int:
        """Force the micro-batcher to drain; returns rows flushed."""
        return self.batcher.flush()

    def poll(self) -> bool:
        """Flush the micro-batcher if its wait deadline expired."""
        return self.batcher.poll()

    def close(self) -> None:
        """Drain the batcher, stop its flusher, and shut the pool down."""
        self.batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.close()

    def __enter__(self) -> "PredictionServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _merge(
        self, payloads: Sequence[Mapping[str, np.ndarray]]
    ) -> Mapping[str, np.ndarray]:
        if len(payloads) == 1:
            return payloads[0]
        return {
            column: np.concatenate(
                [np.asarray(p[column]) for p in payloads]
            )
            for column in self.features.required_columns
        }

    def _predict_merged(self, merged: Mapping[str, np.ndarray]) -> list:
        """Assemble and predict one merged column-dict chunk.

        Under ``engine="factorized"`` the batch is assembled without
        the dimension gather and scored through the load-time
        :class:`~repro.serving.factorized.FactorizedScorer`.
        """
        started = time.perf_counter()
        if self._scorer is not None:
            X = self.features.assemble_factorized(merged)
            assembled = time.perf_counter()
            codes = self._scorer.predict_codes(X)
        else:
            X = self.features.assemble(merged)
            assembled = time.perf_counter()
            codes = self.artifact.predict_codes(X)
        finished = time.perf_counter()
        self._assemble_seconds.observe(assembled - started)
        self._predict_seconds.observe(finished - assembled)
        self._rows.inc(X.n_rows)
        return self.artifact.decode_labels(codes)

    def _predict_encoded(
        self, payloads: Sequence[Mapping[str, np.ndarray]]
    ) -> list:
        """Assemble and predict a batch of encoded column-dicts.

        With one worker the payloads are concatenated into one matrix
        and predicted in a single vectorized call.  With ``workers > 1``
        the payload list is split into contiguous chunks predicted
        concurrently; per-row results are independent of chunk
        boundaries, so the output is identical either way, in
        submission order.

        With ``process_workers`` the chunks run on the process-sharded
        predictor pool instead (assembly and prediction both leave this
        process); the workers' latency/cache telemetry folds back into
        this server's registry on the next :meth:`stats` call.
        """
        if self._process_pool is not None:
            return self._process_pool.predict(payloads)
        n_chunks = 1 if self._pool is None else min(self.workers, len(payloads))
        if n_chunks <= 1:
            return self._predict_merged(self._merge(payloads))
        bounds = np.linspace(0, len(payloads), n_chunks + 1, dtype=int)
        futures = [
            self._pool.submit(
                self._predict_merged, self._merge(payloads[lo:hi])
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        results: list = []
        for future in futures:
            results.extend(future.result())
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """Snapshot request counters, latency and cache accounting.

        One point-in-time read of the server's shared registry; the
        ``latency_ms`` breakdown reports each serving stage's mean and
        p50/p95/p99 in milliseconds.  With a process-sharded pool the
        workers' telemetry deltas (latency histograms, row counters,
        cache accounting) are drained and merged in first, so the
        snapshot covers the whole pool.
        """
        if self._process_pool is not None:
            self._process_pool.merge_stats(self.metrics)
        cache = self.features.cache.stats
        batcher = self.batcher.stats
        latency_ms = {}
        for stage, metric_name in LATENCY_STAGES:
            histogram = self.metrics.histogram(metric_name)
            latency_ms[stage] = {
                "count": histogram.count,
                "mean": 1000.0 * histogram.mean,
                "p50": 1000.0 * histogram.p50,
                "p95": 1000.0 * histogram.p95,
                "p99": 1000.0 * histogram.p99,
            }
        return ServerStats(
            # Direct-path calls increment ``serving.requests``; the
            # submit path is tallied by the batcher, so total requests
            # is the sum of both.
            requests=self._requests.value + batcher.submitted,
            rows=self._rows.value,
            # Every predict call observes the assemble stage exactly
            # once, so the histogram's count *is* the call count — no
            # separate hot-path counter needed.
            predict_calls=self._assemble_seconds.count,
            assemble_seconds=self._assemble_seconds.sum,
            predict_seconds=self._predict_seconds.sum,
            batches_flushed=batcher.flushes,
            mean_batch_rows=batcher.mean_batch,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=cache.hit_rate,
            failed_flushes=batcher.failed_flushes,
            rows_failed=batcher.rows_failed,
            shed_requests=batcher.shed_requests,
            deadline_expired=batcher.deadline_expired,
            rows_quarantined=batcher.rows_quarantined,
            workers=self.process_workers or self.workers,
            queue_wait_seconds=self.metrics.histogram(
                "serving.latency.queue_wait_s"
            ).sum,
            latency_ms=latency_ms,
        )

    def __repr__(self) -> str:
        return (
            f"PredictionServer({self.artifact.summary()}, "
            f"{self.stats()})"
        )
