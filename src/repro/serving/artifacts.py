"""Versioned, portable on-disk artifacts for trained pipelines.

An artifact is everything online inference needs from an offline
experiment: the fitted predictor, the join strategy that defines which
dimensions are avoided, the exact feature order the model was trained
on, the target domain for decoding predictions, and the join-safety
advice that justified the strategy.  Artifacts are written as a zip
archive holding a JSON ``manifest.json`` (inspectable without importing
repro, versioned via ``ARTIFACT_FORMAT_VERSION``) next to a pickled
model payload.

The manifest records a *schema fingerprint* — a SHA-256 digest of the
star schema's structure and closed domains — so a server can refuse to
load an artifact against a schema whose domains drifted since training
(which would silently scramble every integer code).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

import repro
from repro.core.advisor import JoinSafetyReport, advise
from repro.core.strategies import JoinStrategy, PartialJoinStrategy
from repro.errors import SchemaError
from repro.ml.encoding import CategoricalMatrix
from repro.relational.schema import StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.runner import FittedPipeline

#: Bump when the on-disk layout changes incompatibly.
ARTIFACT_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_PAYLOAD_NAME = "model.pkl"


def _domain_digest(labels: tuple) -> str:
    h = hashlib.sha256()
    for label in labels:
        h.update(repr(label).encode())
        h.update(b"\x00")
    return h.hexdigest()


def schema_fingerprint(schema: StarSchema) -> str:
    """SHA-256 digest of a star schema's structure and closed domains.

    Covers table names, column names and order, per-column domain labels,
    the target, the fact key, the KFK constraints and the open-FK set —
    everything that determines how integer codes map to values.  Row
    *contents* are deliberately excluded: dimension tables may grow or be
    corrected between training and serving without invalidating a model,
    as long as the domains stay closed.
    """
    description: dict[str, Any] = {
        "target": schema.target,
        "fact_key": schema.fact_key,
        "open_fks": sorted(schema.open_fks),
        "constraints": [
            [c.fk_column, c.dimension, c.rid_column] for c in schema.constraints
        ],
        "tables": [],
    }
    tables = [schema.fact] + [schema.dimension(n) for n in schema.dimension_names]
    for table in tables:
        description["tables"].append(
            [
                table.name,
                [
                    [column.name, len(column.domain), _domain_digest(column.domain.labels)]
                    for column in table.columns
                ],
            ]
        )
    canonical = json.dumps(description, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def strategy_to_dict(strategy: JoinStrategy) -> dict[str, Any]:
    """Serialise a strategy to a JSON-compatible dict."""
    out: dict[str, Any] = {
        "kind": type(strategy).__name__,
        "name": strategy.name,
        "avoided": None if strategy.avoided is None else sorted(strategy.avoided),
        "include_fks": strategy.include_fks,
    }
    if isinstance(strategy, PartialJoinStrategy):
        out["kept_features"] = [
            [dim, list(features)] for dim, features in strategy.kept_features
        ]
    return out


def strategy_from_dict(data: dict[str, Any]) -> JoinStrategy:
    """Reconstruct a strategy serialised by :func:`strategy_to_dict`."""
    kind = data.get("kind", "JoinStrategy")
    avoided = data["avoided"]
    avoided = None if avoided is None else frozenset(avoided)
    if kind == "PartialJoinStrategy":
        return PartialJoinStrategy(
            name=data["name"],
            avoided=avoided if avoided is not None else frozenset(),
            include_fks=data["include_fks"],
            kept_features=tuple(
                (dim, tuple(features)) for dim, features in data["kept_features"]
            ),
        )
    if kind != "JoinStrategy":
        raise SchemaError(f"unknown strategy kind {kind!r} in artifact manifest")
    return JoinStrategy(
        name=data["name"], avoided=avoided, include_fks=data["include_fks"]
    )


@dataclass
class ModelArtifact:
    """A trained pipeline packaged for online serving.

    Attributes
    ----------
    model:
        The fitted predictor (a tuner or estimator exposing
        ``predict(CategoricalMatrix) -> codes``).
    strategy:
        The join strategy the model was trained under; the feature
        service replays it at serving time, skipping avoided dimensions.
    feature_names:
        Exact feature order of the training matrix.
    target:
        Name of the label column.
    target_labels:
        The target domain's labels, in code order, for decoding.
    fingerprint:
        :func:`schema_fingerprint` of the training schema.
    model_key:
        Registry key of the model family (``dt_gini``, ``ann``, ...).
    dataset_name:
        Name of the dataset the pipeline was trained on.
    advice:
        The join-safety report for the model's family, recorded so the
        operational decision ("which joins did we avoid, and why") ships
        with the model.
    metadata:
        Free-form provenance (generation seed, scale profile, ...).
    """

    model: Any
    strategy: JoinStrategy
    feature_names: tuple[str, ...]
    target: str
    target_labels: tuple
    fingerprint: str
    model_key: str
    dataset_name: str
    advice: JoinSafetyReport | None = None
    format_version: int = ARTIFACT_FORMAT_VERSION
    repro_version: str = repro.__version__
    metadata: dict[str, Any] = field(default_factory=dict)

    def predict_codes(self, X: CategoricalMatrix) -> np.ndarray:
        """Predict integer label codes for an assembled feature matrix."""
        if X.names != self.feature_names:
            raise SchemaError(
                f"artifact expects features {list(self.feature_names)}, "
                f"got {list(X.names)}"
            )
        return np.asarray(self.model.predict(X), dtype=np.int64)

    def decode_labels(self, codes: np.ndarray) -> list:
        """Map predicted label codes back to target-domain labels."""
        return [self.target_labels[int(code)] for code in codes]

    def check_schema(self, schema: StarSchema) -> None:
        """Raise :class:`SchemaError` unless ``schema`` matches training."""
        live = schema_fingerprint(schema)
        if live != self.fingerprint:
            raise SchemaError(
                f"schema fingerprint mismatch: artifact was trained against "
                f"{self.fingerprint[:12]}..., live schema is {live[:12]}...; "
                f"domains or structure drifted since training"
            )

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        avoided = (
            "all avoidable" if self.strategy.avoided is None
            else ", ".join(sorted(self.strategy.avoided)) or "none"
        )
        return (
            f"ModelArtifact(dataset={self.dataset_name!r}, "
            f"model={self.model_key!r}, strategy={self.strategy.name!r}, "
            f"avoided dims: {avoided}, {len(self.feature_names)} features, "
            f"format v{self.format_version}, repro {self.repro_version})"
        )


def artifact_from_pipeline(
    pipeline: "FittedPipeline",
    schema: StarSchema,
    metadata: dict[str, Any] | None = None,
) -> ModelArtifact:
    """Package a :class:`~repro.experiments.runner.FittedPipeline`.

    Also records the join-safety advice for the pipeline's model family,
    computed against the pipeline's *training-split* size (the paper's
    Table 1 convention), so the artifact documents whether the strategy
    it ships agrees with the tuple-ratio rule that would have chosen it.
    """
    target_domain = schema.fact.column(schema.target).domain
    return ModelArtifact(
        model=pipeline.tuner,
        strategy=pipeline.strategy,
        feature_names=tuple(pipeline.feature_names),
        target=schema.target,
        target_labels=tuple(target_domain.labels),
        fingerprint=schema_fingerprint(schema),
        model_key=pipeline.model_key,
        dataset_name=pipeline.dataset_name,
        advice=advise(
            schema,
            pipeline.spec.family,
            train_rows=pipeline.matrices.y_train.shape[0],
        ),
        metadata=dict(metadata or {}),
    )


def save_artifact(artifact: ModelArtifact, path: str | Path) -> Path:
    """Write an artifact to ``path`` (conventionally ``*.repro-model``).

    The archive holds a plain-JSON manifest — format version, versions,
    strategy, feature order, fingerprint, provenance — plus the pickled
    model payload.  Everything needed to *reject* an incompatible
    artifact is readable from the manifest alone.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format_version": artifact.format_version,
        "repro_version": artifact.repro_version,
        "numpy_version": np.__version__,
        "model_key": artifact.model_key,
        "dataset_name": artifact.dataset_name,
        "strategy": strategy_to_dict(artifact.strategy),
        "feature_names": list(artifact.feature_names),
        "target": artifact.target,
        "schema_fingerprint": artifact.fingerprint,
        "metadata": artifact.metadata,
    }
    payload = pickle.dumps(
        {
            "model": artifact.model,
            "target_labels": artifact.target_labels,
            "advice": artifact.advice,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    # Write the zip to a temp file beside the target and os.replace it
    # into place: a kill mid-save leaves either the previous artifact or
    # the complete new one, never a truncated archive that
    # load_artifact rejects as BadZipFile.
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            with zipfile.ZipFile(
                handle, "w", compression=zipfile.ZIP_DEFLATED
            ) as archive:
                archive.writestr(
                    _MANIFEST_NAME,
                    json.dumps(manifest, indent=2, sort_keys=True),
                )
                archive.writestr(_PAYLOAD_NAME, payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Read just the JSON manifest of a saved artifact."""
    path = Path(path)
    if not path.exists():
        raise SchemaError(f"{path}: no such artifact file")
    try:
        with zipfile.ZipFile(path) as archive:
            try:
                raw = archive.read(_MANIFEST_NAME)
            except KeyError:
                raise SchemaError(
                    f"{path}: not a repro model artifact (no {_MANIFEST_NAME})"
                ) from None
    except zipfile.BadZipFile:
        raise SchemaError(
            f"{path}: not a repro model artifact (not a zip archive)"
        ) from None
    return json.loads(raw)


def load_artifact(path: str | Path) -> ModelArtifact:
    """Load an artifact written by :func:`save_artifact`.

    Raises
    ------
    SchemaError
        If the file is not an artifact or its format version is newer
        than this library understands.
    """
    path = Path(path)
    manifest = read_manifest(path)
    version = manifest.get("format_version")
    if not isinstance(version, int) or version > ARTIFACT_FORMAT_VERSION:
        raise SchemaError(
            f"{path}: artifact format v{version} is newer than the "
            f"supported v{ARTIFACT_FORMAT_VERSION}; upgrade repro to load it"
        )
    with zipfile.ZipFile(path) as archive:
        payload = pickle.loads(archive.read(_PAYLOAD_NAME))
    return ModelArtifact(
        model=payload["model"],
        strategy=strategy_from_dict(manifest["strategy"]),
        feature_names=tuple(manifest["feature_names"]),
        target=manifest["target"],
        target_labels=tuple(payload["target_labels"]),
        fingerprint=manifest["schema_fingerprint"],
        model_key=manifest["model_key"],
        dataset_name=manifest["dataset_name"],
        advice=payload["advice"],
        format_version=version,
        repro_version=manifest["repro_version"],
        metadata=dict(manifest.get("metadata", {})),
    )
