"""Serving-throughput measurement: single-row vs micro-batched paths.

The paper's Figure 1 argument is about *training* time; this module
makes the serving-side counterpart measurable.  It fits one pipeline per
strategy (JoinAll materialises every dimension's features at request
time; NoJoin touches no dimension at all), then replays the same
label-valued request stream through two paths:

- **single** — one ``predict_one`` call per request row, paying the full
  per-call overhead (encode, assemble, predict) every time;
- **batched** — ``submit`` onto the micro-batcher, which coalesces rows
  into vectorized predict calls.

Used by ``repro serve-bench`` and ``benchmarks/bench_serving_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.strategies import (
    JoinStrategy,
    join_all_strategy,
    no_join_strategy,
)
from repro.datasets.splits import SplitDataset
from repro.serving.artifacts import artifact_from_pipeline
from repro.serving.server import PredictionServer


@dataclass
class ThroughputReport:
    """Rows/second per (strategy, path), plus the headline ratio."""

    dataset: str
    model_key: str
    rows: int
    batch_size: int
    rates: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def speedup(self) -> float | None:
        """Micro-batched NoJoin throughput over single-row JoinAll.

        ``None`` when the report was measured with custom strategies
        that don't include both reference points.
        """
        batched = self.rates.get(("NoJoin", "batched"))
        single = self.rates.get(("JoinAll", "single"))
        if batched is None or single is None:
            return None
        return batched / single

    def render(self) -> str:
        """Human-readable table of the measured rates."""
        lines = [
            f"Serving throughput: {self.dataset}/{self.model_key}, "
            f"{self.rows} requests, micro-batch size {self.batch_size}",
            f"{'strategy':10s} {'path':8s} {'rows/s':>12s}",
        ]
        for (strategy, path), rate in sorted(self.rates.items()):
            lines.append(f"{strategy:10s} {path:8s} {rate:12.0f}")
        if self.speedup is not None:
            lines.append(
                f"micro-batched NoJoin vs single-row JoinAll: "
                f"{self.speedup:.1f}x"
            )
        return "\n".join(lines)


def _request_stream(
    server: PredictionServer, dataset: SplitDataset, rows: int
) -> list[dict]:
    """Label-valued request rows cycled from the dataset's test split."""
    fact = dataset.schema.fact
    columns = server.features.required_columns
    decoded = {c: fact.column(c).labels() for c in columns}
    test = dataset.test
    return [
        {c: decoded[c][test[i % test.size]] for c in columns}
        for i in range(rows)
    ]


def _measure(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def serving_throughput(
    dataset: SplitDataset,
    model_key: str = "dt_gini",
    rows: int = 2000,
    batch_size: int = 64,
    scale=None,
    strategies: tuple[JoinStrategy, ...] | None = None,
) -> ThroughputReport:
    """Measure single-row and micro-batched serving rates per strategy.

    Parameters
    ----------
    dataset:
        The star-schema dataset to fit and serve against.
    model_key:
        Model registry key; the default gini tree is the paper's primary
        model and has a cheap, serving-friendly predict path.
    rows:
        Request-stream length per measurement.
    batch_size:
        Micro-batcher ``max_batch_size`` for the batched path.
    scale:
        Training scale profile (resolved via ``REPRO_SCALE`` if omitted).
    strategies:
        Strategies to compare; defaults to (JoinAll, NoJoin).
    """
    from repro.experiments.runner import fit_pipeline

    if strategies is None:
        strategies = (join_all_strategy(), no_join_strategy())
    report = ThroughputReport(
        dataset=dataset.name, model_key=model_key, rows=rows, batch_size=batch_size
    )
    for strategy in strategies:
        pipeline = fit_pipeline(dataset, model_key, strategy, scale=scale)
        artifact = artifact_from_pipeline(pipeline, dataset.schema)

        def fresh_server() -> PredictionServer:
            return PredictionServer(
                artifact,
                dataset.schema,
                max_batch_size=batch_size,
                max_wait_s=None,
            )

        server = fresh_server()
        requests = _request_stream(server, dataset, rows)
        # Warm both paths once so compilation/caching effects don't skew
        # the first strategy measured.
        server.predict_one(requests[0])
        server.submit(requests[0]).result()

        single = fresh_server()
        seconds = _measure(
            lambda: [single.predict_one(row) for row in requests]
        )
        report.rates[(strategy.name, "single")] = rows / seconds

        batched = fresh_server()

        def run_batched(server: PredictionServer = batched) -> None:
            handles = [server.submit(row) for row in requests]
            server.flush()
            for handle in handles:
                handle.result()

        seconds = _measure(run_batched)
        report.rates[(strategy.name, "batched")] = rows / seconds
    return report
