"""Serving-throughput measurement: single-row vs micro-batched paths.

The paper's Figure 1 argument is about *training* time; this module
makes the serving-side counterpart measurable.  It fits one pipeline per
strategy (JoinAll materialises every dimension's features at request
time; NoJoin touches no dimension at all), then replays the same
label-valued request stream through two paths:

- **single** — one ``predict_one`` call per request row, paying the full
  per-call overhead (encode, assemble, predict) every time;
- **batched** — ``submit`` onto the micro-batcher, which coalesces rows
  into vectorized predict calls.

:func:`concurrent_serving_throughput` adds the multi-threaded
counterpart: an open-loop load generator with K client threads drives
the thread-safe serving runtime, comparing the per-request single-worker
baseline against the micro-batched worker-pool configurations and
verifying the concurrent predictions are identical to a single-threaded
run of the same stream.

Used by ``repro serve-bench``, ``benchmarks/bench_serving_throughput.py``
and ``benchmarks/bench_serving_concurrency.py``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.core.strategies import (
    JoinStrategy,
    join_all_strategy,
    no_join_strategy,
)
from repro.datasets.splits import SplitDataset
from repro.resilience import backoff
from repro.serving.artifacts import artifact_from_pipeline
from repro.serving.server import PredictionServer


@dataclass
class ThroughputReport:
    """Rows/second per (strategy, path), plus the headline ratio.

    ``latency_ms`` carries each configuration's per-stage latency
    breakdown (``queue_wait``/``assemble``/``predict``/``request``,
    each with mean and p50/p95/p99 in milliseconds) — the
    :attr:`~repro.serving.server.ServerStats.latency_ms` snapshot of
    the server that ran the measurement.
    """

    dataset: str
    model_key: str
    rows: int
    batch_size: int
    rates: dict[tuple[str, str], float] = field(default_factory=dict)
    latency_ms: dict[tuple[str, str], dict] = field(default_factory=dict)
    #: Serving engine the servers ran (``"implicit"`` or ``"factorized"``).
    engine: str = "implicit"

    @property
    def speedup(self) -> float | None:
        """Micro-batched NoJoin throughput over single-row JoinAll.

        ``None`` when the report was measured with custom strategies
        that don't include both reference points.
        """
        batched = self.rates.get(("NoJoin", "batched"))
        single = self.rates.get(("JoinAll", "single"))
        if batched is None or single is None:
            return None
        return batched / single

    def render(self) -> str:
        """Human-readable table of the measured rates."""
        engine_note = (
            "" if self.engine == "implicit" else f", {self.engine} engine"
        )
        lines = [
            f"Serving throughput: {self.dataset}/{self.model_key}, "
            f"{self.rows} requests, micro-batch size {self.batch_size}"
            f"{engine_note}",
            f"{'strategy':10s} {'path':8s} {'rows/s':>12s} "
            f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}",
        ]
        for (strategy, path), rate in sorted(self.rates.items()):
            request = self.latency_ms.get((strategy, path), {}).get(
                "request", {}
            )
            lines.append(
                f"{strategy:10s} {path:8s} {rate:12.0f} "
                f"{request.get('p50', 0.0):8.3f} "
                f"{request.get('p95', 0.0):8.3f} "
                f"{request.get('p99', 0.0):8.3f}"
            )
        if self.speedup is not None:
            lines.append(
                f"micro-batched NoJoin vs single-row JoinAll: "
                f"{self.speedup:.1f}x"
            )
        return "\n".join(lines)


def _request_stream(
    server: PredictionServer, dataset: SplitDataset, rows: int
) -> list[dict]:
    """Label-valued request rows cycled from the dataset's test split."""
    fact = dataset.schema.fact
    columns = server.features.required_columns
    decoded = {c: fact.column(c).labels() for c in columns}
    test = dataset.test
    return [
        {c: decoded[c][test[i % test.size]] for c in columns}
        for i in range(rows)
    ]


def _measure(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def serving_throughput(
    dataset: SplitDataset,
    model_key: str = "dt_gini",
    rows: int = 2000,
    batch_size: int = 64,
    scale=None,
    strategies: tuple[JoinStrategy, ...] | None = None,
    engine: str = "implicit",
) -> ThroughputReport:
    """Measure single-row and micro-batched serving rates per strategy.

    Parameters
    ----------
    dataset:
        The star-schema dataset to fit and serve against.
    model_key:
        Model registry key; the default gini tree is the paper's primary
        model and has a cheap, serving-friendly predict path.
    rows:
        Request-stream length per measurement.
    batch_size:
        Micro-batcher ``max_batch_size`` for the batched path.
    scale:
        Training scale profile (resolved via ``REPRO_SCALE`` if omitted).
    strategies:
        Strategies to compare; defaults to (JoinAll, NoJoin).
    engine:
        Serving engine for every server measured (see
        :class:`~repro.serving.server.PredictionServer`); the
        factorized engine requires a linear or NB ``model_key``.
    """
    from repro.experiments.runner import fit_pipeline

    if strategies is None:
        strategies = (join_all_strategy(), no_join_strategy())
    report = ThroughputReport(
        dataset=dataset.name, model_key=model_key, rows=rows,
        batch_size=batch_size, engine=engine,
    )
    for strategy in strategies:
        pipeline = fit_pipeline(dataset, model_key, strategy, scale=scale)
        artifact = artifact_from_pipeline(pipeline, dataset.schema)

        def fresh_server() -> PredictionServer:
            return PredictionServer(
                artifact,
                dataset.schema,
                max_batch_size=batch_size,
                max_wait_s=None,
                engine=engine,
            )

        server = fresh_server()
        requests = _request_stream(server, dataset, rows)
        # Warm both paths once so compilation/caching effects don't skew
        # the first strategy measured.
        server.predict_one(requests[0])
        server.submit(requests[0]).result()

        single = fresh_server()
        seconds = _measure(
            lambda: [single.predict_one(row) for row in requests]
        )
        report.rates[(strategy.name, "single")] = rows / seconds
        report.latency_ms[(strategy.name, "single")] = (
            single.stats().latency_ms
        )

        batched = fresh_server()

        def run_batched(server: PredictionServer = batched) -> None:
            handles = [server.submit(row) for row in requests]
            server.flush()
            for handle in handles:
                handle.result()

        seconds = _measure(run_batched)
        report.rates[(strategy.name, "batched")] = rows / seconds
        report.latency_ms[(strategy.name, "batched")] = (
            batched.stats().latency_ms
        )
    return report


# ----------------------------------------------------------------------
# Concurrent serving: open-loop load generation over K client threads
# ----------------------------------------------------------------------
@dataclass
class ConcurrencyReport:
    """Throughput of the concurrent runtime per worker count.

    ``baseline_rows_per_s`` is the single-worker baseline: the same K
    client threads, but each request served one at a time through the
    per-request path (no cross-request batching, one predict thread) —
    the throughput a naive thread-safe server would sustain.  ``rates``
    maps each worker-pool size to the micro-batched runtime's rate.
    ``identical`` records whether every concurrent run's predictions
    matched the single-threaded reference row for row.
    """

    dataset: str
    model_key: str
    strategy: str
    rows: int
    batch_size: int
    clients: int
    max_wait_s: float
    cpu_count: int
    baseline_rows_per_s: float = 0.0
    rates: dict[int, float] = field(default_factory=dict)
    mean_batch_rows: dict[int, float] = field(default_factory=dict)
    identical: bool = True
    #: Per-stage latency breakdowns (ms, with p50/p95/p99): the
    #: baseline server's and one per worker-pool configuration.
    baseline_latency_ms: dict = field(default_factory=dict)
    latency_ms: dict[int, dict] = field(default_factory=dict)
    #: ``"thread"`` (the in-process worker pool) or ``"process"``
    #: (:class:`repro.parallel.ProcessPredictorPool` sharding).
    tier: str = "thread"
    #: Serving engine the servers ran (``"implicit"`` or ``"factorized"``).
    engine: str = "implicit"

    def speedup(self, workers: int) -> float | None:
        """Concurrent-runtime throughput over the single-worker baseline."""
        rate = self.rates.get(workers)
        if rate is None or not self.baseline_rows_per_s:
            return None
        return rate / self.baseline_rows_per_s

    def render(self) -> str:
        """Human-readable table of the measured rates."""
        engine_note = (
            "" if self.engine == "implicit" else f", {self.engine} engine"
        )
        lines = [
            f"Concurrent serving ({self.tier} tier{engine_note}): "
            f"{self.dataset}/{self.model_key} "
            f"({self.strategy}), {self.rows} requests, "
            f"{self.clients} client threads, micro-batch size "
            f"{self.batch_size}, {self.cpu_count} CPU(s)",
            f"{'configuration':24s} {'rows/s':>12s} {'mean batch':>11s} "
            f"{'speedup':>8s} {'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}",
            f"{'per-request, 1 worker':24s} {self.baseline_rows_per_s:12.0f} "
            f"{1.0:11.1f} {'1.0x':>8s}"
            + _render_request_latency(self.baseline_latency_ms),
        ]
        for workers in sorted(self.rates):
            lines.append(
                f"{f'batched, {workers} worker(s)':24s} "
                f"{self.rates[workers]:12.0f} "
                f"{self.mean_batch_rows.get(workers, 0.0):11.1f} "
                f"{f'{self.speedup(workers):.1f}x':>8s}"
                + _render_request_latency(self.latency_ms.get(workers, {}))
            )
        lines.append(
            "concurrent predictions identical to single-threaded: "
            f"{self.identical}"
        )
        return "\n".join(lines)


def _render_request_latency(latency_ms: dict) -> str:
    """The end-to-end stage's percentile columns for one table row."""
    request = latency_ms.get("request", {})
    return (
        f" {request.get('p50', 0.0):8.3f}"
        f" {request.get('p95', 0.0):8.3f}"
        f" {request.get('p99', 0.0):8.3f}"
    )


def _drive_clients(
    server: PredictionServer,
    requests: list[dict],
    clients: int,
    batched: bool,
    arrival_rate: float | None = None,
    result_timeout: float = 60.0,
) -> tuple[float, list]:
    """Replay ``requests`` through ``server`` from ``clients`` threads.

    The stream is dealt round-robin across client threads.  Arrival is
    open-loop: with ``arrival_rate`` set (aggregate requests/second)
    each client submits on a fixed schedule independent of completions;
    with ``None`` clients submit as fast as they can (the unbounded-rate
    limit, i.e. a saturation measurement).  Returns the wall-clock
    seconds from the start barrier until every prediction resolved, and
    the predictions in stream order.
    """
    if arrival_rate is not None and arrival_rate <= 0:
        raise ValueError(
            f"arrival_rate must be positive (requests/s), got {arrival_rate}"
        )
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    results: list = [None] * len(requests)
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)
    interval = (
        None if arrival_rate is None else clients / arrival_rate
    )

    def client(offset: int) -> None:
        indexes = range(offset, len(requests), clients)
        try:
            barrier.wait()
            started = time.monotonic()
            if batched:
                handles = []
                for k, i in enumerate(indexes):
                    if interval is not None:
                        delay = started + k * interval - time.monotonic()
                        backoff.sleep(delay)
                    handles.append((i, server.submit(requests[i])))
                for i, handle in handles:
                    results[i] = handle.result(timeout=result_timeout)
            else:
                for k, i in enumerate(indexes):
                    if interval is not None:
                        delay = started + k * interval - time.monotonic()
                        backoff.sleep(delay)
                    results[i] = server.predict_one(requests[i])
        # Client threads park failures for the coordinator, which
        # re-raises the first one after joining all threads.
        # repro: lint-ignore[exception-hygiene]
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(offset,), daemon=True)
        for offset in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    if errors:
        raise errors[0]
    return seconds, results


def concurrent_serving_throughput(
    dataset: SplitDataset,
    model_key: str = "dt_gini",
    rows: int = 4000,
    batch_size: int = 64,
    clients: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    max_wait_s: float = 0.002,
    arrival_rate: float | None = None,
    scale=None,
    strategy: JoinStrategy | None = None,
    tier: str = "thread",
    engine: str = "implicit",
) -> ConcurrencyReport:
    """Measure the concurrent serving runtime under K client threads.

    Fits one pipeline (NoJoin by default — the paper's serving payoff),
    computes a single-threaded reference prediction for the whole
    request stream, then drives the same stream concurrently through

    - the single-worker baseline: ``predict_one`` per request from
      every client thread (no cross-request coalescing), and
    - the micro-batched runtime at each ``worker_counts`` entry:
      clients ``submit`` onto the shared thread-safe batcher, whose
      background deadline flusher and worker pool coalesce and shard
      the cross-client batches.

    Every concurrent run's predictions are compared against the
    reference; ``report.identical`` is the conjunction.

    ``tier="process"`` swaps the in-process worker pool for the
    process-sharded :class:`repro.parallel.ProcessPredictorPool` at
    each ``worker_counts`` entry — same baseline, same identity check,
    so the two tiers' reports compare like for like.
    """
    from repro.experiments.runner import fit_pipeline

    if tier not in ("thread", "process"):
        raise ValueError(f"tier must be 'thread' or 'process', got {tier!r}")
    if arrival_rate is not None and arrival_rate <= 0:
        # Fail before the pipeline fit and baseline run, not after.
        raise ValueError(
            f"arrival_rate must be positive (requests/s), got {arrival_rate}"
        )
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if strategy is None:
        strategy = no_join_strategy()
    pipeline = fit_pipeline(dataset, model_key, strategy, scale=scale)
    artifact = artifact_from_pipeline(pipeline, dataset.schema)

    def fresh_server(**kwargs) -> PredictionServer:
        return PredictionServer(
            artifact, dataset.schema, max_batch_size=batch_size,
            engine=engine, **kwargs
        )

    reference_server = fresh_server(max_wait_s=None, background_flush=False)
    requests = _request_stream(reference_server, dataset, rows)
    reference = reference_server.predict_batch(requests)

    report = ConcurrencyReport(
        dataset=dataset.name,
        model_key=model_key,
        strategy=strategy.name,
        rows=rows,
        batch_size=batch_size,
        clients=clients,
        max_wait_s=max_wait_s,
        cpu_count=os.cpu_count() or 1,
        tier=tier,
        engine=engine,
    )

    baseline = fresh_server(max_wait_s=None, background_flush=False)
    baseline.predict_one(requests[0])  # warm caches off the clock
    seconds, results = _drive_clients(
        baseline, requests, clients, batched=False, arrival_rate=arrival_rate
    )
    report.baseline_rows_per_s = rows / seconds
    report.baseline_latency_ms = baseline.stats().latency_ms
    report.identical &= results == reference

    for workers in worker_counts:
        pool_kwargs = (
            {"process_workers": workers}
            if tier == "process"
            else {"workers": workers}
        )
        with fresh_server(max_wait_s=max_wait_s, **pool_kwargs) as server:
            server.predict_one(requests[0])  # warm caches off the clock
            seconds, results = _drive_clients(
                server,
                requests,
                clients,
                batched=True,
                arrival_rate=arrival_rate,
            )
            stats = server.stats()
            report.rates[workers] = rows / seconds
            report.mean_batch_rows[workers] = stats.mean_batch_rows
            report.latency_ms[workers] = stats.latency_ms
            report.identical &= results == reference
    return report
