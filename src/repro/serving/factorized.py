"""Factorized serving: per-dimension score contributions fixed at load.

The factorized engine's serving payoff is that a trained linear or NB
model's score is *additive over features*, so each joined dimension's
share of the score depends only on which dimension row a fact row
resolves to — never on the fact row itself.  :class:`FactorizedScorer`
exploits that at model-load time: for every joined dimension it folds
the model's per-feature weights through the dimension's ``(|D|, d_R)``
code block once, producing a single per-dimension-row contribution
vector (``(|D|,)`` for the linear score, ``(|D|, C)`` for NB joint
log-likelihoods).  A served prediction is then one table gather per
fact feature plus one ``contrib[dim_rows]`` gather per dimension and
an add — no per-row dimension-feature work at all, for any ``d_R``.

This is the serving analogue of the training-side kernel push-down in
:class:`~repro.ml.sparse.FactorizedMatrix`: training pays
``O(|D|·d_R)`` per kernel pass, serving pays it exactly once per
loaded model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaError
from repro.ml.linear.logistic import L1LogisticRegression
from repro.ml.naive_bayes import CategoricalNB
from repro.ml.sparse import FactorizedMatrix

__all__ = ["FactorizedScorer", "supports_factorized_serving"]


def _unwrap(model):
    """Peel tuner wrappers down to the fitted estimator.

    Feature-selecting wrappers are refused: their best model scores a
    *subset* of the assembled features, so per-dimension contributions
    computed against the full layout would be wrong.
    """
    while hasattr(model, "best_model_"):
        if getattr(model, "selected_indices_", None) is not None:
            raise ValueError(
                "factorized serving does not support feature-selected "
                "models: the fitted model consumes a feature subset, not "
                "the assembled layout"
            )
        model = model.best_model_
    return model


def supports_factorized_serving(model) -> bool:
    """Whether an artifact's model can serve through the factorized path."""
    try:
        unwrapped = _unwrap(model)
    except ValueError:
        return False
    return isinstance(unwrapped, (L1LogisticRegression, CategoricalNB))


class FactorizedScorer:
    """Precomputed factorized predictor for one (artifact, encoder) pair.

    Parameters
    ----------
    artifact:
        A loaded :class:`~repro.serving.artifacts.ModelArtifact` whose
        (possibly tuner-wrapped) model is an
        :class:`~repro.ml.linear.logistic.L1LogisticRegression` or a
        :class:`~repro.ml.naive_bayes.CategoricalNB`.
    features:
        The server's :class:`~repro.serving.feature_service.FeatureService`
        (any :class:`~repro.data.encoder.ShardEncoder`): supplies the
        feature layout and each joined dimension's memoised code block.

    Construction walks every joined dimension's block once; afterwards
    :meth:`predict_codes` reads only the request's fact codes and each
    group's resolved ``dim_rows`` — it never touches a group's block.
    """

    def __init__(self, artifact, features):
        model = _unwrap(artifact.model)
        self.feature_names: tuple[str, ...] = tuple(features.feature_names)
        n_levels = tuple(features.n_levels)
        offsets = np.concatenate(([0], np.cumsum(n_levels))).astype(np.int64)

        fact_positions: list[int] = []
        dims: dict[str, list[int]] = {}
        dim_features: dict[str, list[str]] = {}
        for position, feature in enumerate(self.feature_names):
            owner = features._foreign_of.get(feature)
            if owner is None:
                fact_positions.append(position)
            else:
                name, _ = owner
                dims.setdefault(name, []).append(position)
                dim_features.setdefault(name, []).append(feature)

        def block_of(name: str) -> np.ndarray:
            entry = features.cache.get(name)
            return features._dimension_block(name, entry, dim_features[name])

        if isinstance(model, L1LogisticRegression):
            self._kind = "linear"
            coef = np.asarray(model.coef_, dtype=np.float64)
            self._intercept = float(model.intercept_)
            self._fact_tables = [
                (position, coef[offsets[position] : offsets[position + 1]])
                for position in fact_positions
            ]
            self._dim_contrib: dict[str, np.ndarray] = {}
            for name, positions in dims.items():
                block = block_of(name)
                contrib = np.zeros(block.shape[0], dtype=np.float64)
                for c, position in enumerate(positions):
                    contrib += coef[offsets[position] + block[:, c]]
                self._dim_contrib[name] = contrib
        elif isinstance(model, CategoricalNB):
            self._kind = "nb"
            self._prior = np.asarray(
                model.class_log_prior_, dtype=np.float64
            )
            # Transposed to (k, C) so a request gather is table[codes].
            self._fact_tables = [
                (position, np.asarray(model.feature_log_prob_[position]).T)
                for position in fact_positions
            ]
            self._dim_contrib = {}
            for name, positions in dims.items():
                block = block_of(name)
                contrib = np.zeros(
                    (block.shape[0], len(self._prior)), dtype=np.float64
                )
                for c, position in enumerate(positions):
                    contrib += np.asarray(
                        model.feature_log_prob_[position]
                    ).T[block[:, c]]
                self._dim_contrib[name] = contrib
        else:
            raise ValueError(
                f"factorized serving supports L1 logistic regression and "
                f"categorical naive Bayes; artifact model is "
                f"{type(model).__name__}"
            )

    def predict_codes(self, X: FactorizedMatrix) -> np.ndarray:
        """Predict label codes for an assembled factorized batch.

        Per fact feature: one weight-table gather.  Per joined
        dimension: one ``contrib[dim_rows]`` gather.  The group blocks
        are never read — the per-dimension work was all done at load.
        """
        if not isinstance(X, FactorizedMatrix):
            raise TypeError(
                f"FactorizedScorer consumes FactorizedMatrix, got "
                f"{type(X).__name__}"
            )
        if X.names != self.feature_names:
            raise SchemaError(
                f"scorer expects features {list(self.feature_names)}, "
                f"got {list(X.names)}"
            )
        column_of = {
            int(position): column
            for column, position in enumerate(X.fact_positions)
        }
        for group in X.groups:
            if group.name not in self._dim_contrib:
                raise SchemaError(
                    f"request factorizes dimension {group.name!r} the "
                    f"loaded model has no contribution for"
                )
        if self._kind == "linear":
            scores = np.full(X.n_rows, self._intercept, dtype=np.float64)
            for position, table in self._fact_tables:
                scores += table[X.fact_codes[:, column_of[position]]]
            for group in X.groups:
                scores += self._dim_contrib[group.name][group.dim_rows]
            return (scores >= 0).astype(np.int64)
        jll = np.tile(self._prior, (X.n_rows, 1))
        for position, table in self._fact_tables:
            jll += table[X.fact_codes[:, column_of[position]]]
        for group in X.groups:
            jll += self._dim_contrib[group.name][group.dim_rows]
        return np.argmax(jll, axis=1)

    def __repr__(self) -> str:
        return (
            f"FactorizedScorer(kind={self._kind!r}, "
            f"{len(self._fact_tables)} fact features, "
            f"{len(self._dim_contrib)} dimensions)"
        )
