"""The one place in ``src/repro`` allowed to block on the clock.

Every deliberate delay in the library — retry backoff, injected slow
shards, open-loop load-generator pacing — funnels through
:func:`sleep`.  ``tools/check_telemetry_hygiene.py`` enforces the
funnel: a bare ``time.sleep()`` anywhere else in ``src/repro`` fails
the lint.  One chokepoint means sleeping is always attributable (the
caller states why via the surrounding code) and tests can monkeypatch a
single function to make every backoff instantaneous.
"""

from __future__ import annotations

import time


def sleep(seconds: float) -> None:
    """Block the calling thread for ``seconds`` (no-op when <= 0)."""
    if seconds > 0:
        time.sleep(seconds)
