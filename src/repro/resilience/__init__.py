"""Fault tolerance for the training and serving planes.

The resilience layer makes failure a first-class, *testable* subsystem
instead of scattered try/except:

- :mod:`~repro.resilience.faults` — deterministic, seeded fault
  schedules and the :class:`FaultInjectingSource` /
  :class:`FaultInjectingModel` decorators that execute them, so every
  failure mode reproduces exactly in tests, benchmarks and chaos runs.
- :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts, seeded exponential-backoff jitter, a retryable-exception
  allowlist; pluggable into :class:`~repro.data.PrefetchingSource` and
  :class:`~repro.data.SpillCacheSource`.
- :mod:`~repro.resilience.checkpoint` — :class:`CheckpointManager`:
  atomic, checksummed training checkpoints behind
  ``StreamingTrainer(checkpoint=..., resume=True)``, with resumed runs
  bit-identical to uninterrupted ones.
- :mod:`~repro.resilience.backoff` — the one sanctioned ``time.sleep``
  chokepoint (lint-enforced).
- :mod:`~repro.resilience.chaos` — the chaos-soak harness: training and
  serving under a fault schedule, with correctness asserted rather than
  hoped for.

Everything reports through :mod:`repro.obs` (``resilience.retries``,
``resilience.faults_injected``, ``resilience.checkpoints``,
``serving.shed_requests``), so a run's failure handling is visible in
the same snapshot as its throughput.
"""

from repro.resilience import backoff
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import (
    CORRUPT_SPILL,
    FAULT_KINDS,
    SLOW,
    TRANSIENT,
    FaultInjectingModel,
    FaultInjectingSource,
    FaultSchedule,
    FaultSpec,
    PoisonedRowError,
    corrupt_spill_entries,
)
from repro.resilience.retry import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "CORRUPT_SPILL",
    "DEFAULT_RETRYABLE",
    "FAULT_KINDS",
    "SLOW",
    "TRANSIENT",
    "CheckpointManager",
    "FaultInjectingModel",
    "FaultInjectingSource",
    "FaultSchedule",
    "FaultSpec",
    "PoisonedRowError",
    "RetryPolicy",
    "backoff",
    "corrupt_spill_entries",
]
