"""Atomic, checksummed training checkpoints.

A checkpoint is one pickled payload (model state, RNG/optimizer state,
epoch+shard cursor — whatever the trainer hands over) written so that a
kill at *any* instant leaves the directory either without the new
checkpoint or with a complete, verified one — never a torn file:

1. the payload is pickled and prefixed with a CRC-32 of the pickle
   bytes,
2. written to a temp file in the checkpoint directory (same
   filesystem, so the final rename cannot cross devices),
3. flushed and ``os.replace``-d into its final
   ``ckpt-<epoch>-<shard>.pkl`` name (atomic on POSIX).

On resume, :meth:`CheckpointManager.latest` walks checkpoints newest
first and returns the first one whose checksum verifies, so a corrupt
or torn file (a crash mid-``write``, a disk flipping bits) silently
falls back to the previous good state instead of killing the resumed
run too.

Writes are counted as ``resilience.checkpoints`` and sized in the
``resilience.checkpoint_bytes`` histogram; successful resumes count
``resilience.resumes``.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import zlib
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.obs import MetricsRegistry

_NAME = re.compile(r"^ckpt-(\d{6})-(\d{6})\.pkl$")
_MAGIC = b"RCKPT1\n"


def _write_atomic(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp file."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CheckpointManager:
    """Write, list, verify, and prune checkpoints in one directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created on first save.
    keep:
        Number of most-recent checkpoints retained after each save
        (older ones are pruned).  The latest good checkpoint plus one
        predecessor (``keep=2``, the default) survives a crash during
        the save itself.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` for the
        ``resilience.checkpoints`` / ``checkpoint_bytes`` / ``resumes``
        instruments.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 2,
        registry: MetricsRegistry | None = None,
    ):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._saves = self.metrics.counter("resilience.checkpoints")
        self._bytes = self.metrics.histogram("resilience.checkpoint_bytes")
        self._resumes = self.metrics.counter("resilience.resumes")

    def _path(self, epoch: int, shard: int) -> Path:
        if not 0 <= epoch < 10**6 or not 0 <= shard < 10**6:
            raise CheckpointError(
                f"checkpoint cursor out of range: epoch={epoch} shard={shard}"
            )
        return self.directory / f"ckpt-{epoch:06d}-{shard:06d}.pkl"

    def save(self, epoch: int, shard: int, state: Any) -> Path:
        """Atomically persist ``state`` at cursor ``(epoch, shard)``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        payload = (
            _MAGIC
            + zlib.crc32(blob).to_bytes(4, "big")
            + blob
        )
        path = self._path(epoch, shard)
        _write_atomic(path, payload)
        self._saves.inc()
        self._bytes.observe(len(payload))
        self._prune()
        return path

    def _entries(self) -> list[tuple[int, int, Path]]:
        """All checkpoint files as ``(epoch, shard, path)``, oldest first."""
        if not self.directory.is_dir():
            return []
        entries = []
        for path in self.directory.iterdir():
            match = _NAME.match(path.name)
            if match:
                entries.append((int(match[1]), int(match[2]), path))
        entries.sort()
        return entries

    def _prune(self) -> None:
        entries = self._entries()
        for _, _, path in entries[: max(0, len(entries) - self.keep)]:
            try:
                path.unlink()
            except OSError:
                pass  # someone else pruned it; the next save retries

    def _read(self, path: Path) -> Any:
        payload = path.read_bytes()
        if not payload.startswith(_MAGIC):
            raise CheckpointError(f"{path}: not a checkpoint file")
        stored = int.from_bytes(payload[len(_MAGIC): len(_MAGIC) + 4], "big")
        blob = payload[len(_MAGIC) + 4:]
        if zlib.crc32(blob) != stored:
            raise CheckpointError(
                f"{path}: checksum mismatch (torn write or corruption)"
            )
        return pickle.loads(blob)

    def latest(self) -> tuple[int, int, Any] | None:
        """The newest *verified* checkpoint as ``(epoch, shard, state)``.

        Skips files that fail checksum or unpickling (a torn write from
        a crash mid-save) and falls back to the previous checkpoint;
        returns ``None`` when no usable checkpoint exists.
        """
        for epoch, shard, path in reversed(self._entries()):
            try:
                state = self._read(path)
            except (CheckpointError, OSError, pickle.UnpicklingError,
                    EOFError, AttributeError):
                continue
            self._resumes.inc()
            return epoch, shard, state
        return None

    def load(self, epoch: int, shard: int) -> Any:
        """The verified state at exactly cursor ``(epoch, shard)``."""
        path = self._path(epoch, shard)
        if not path.exists():
            raise CheckpointError(f"{path}: no such checkpoint")
        return self._read(path)

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.directory)!r}, keep={self.keep}, "
            f"{len(self._entries())} on disk)"
        )
