"""Deterministic, seeded fault injection for the data and serving planes.

Production failure modes — a transient read error on one shard, a slow
device, a corrupted spill file, a request row that crashes the model —
are only engineerable against if they are *reproducible*.  This module
states each failure as data:

- :class:`FaultSpec` / :class:`FaultSchedule` — a plan mapping
  ``(shard index, attempt number)`` to a fault kind.  Schedules are
  either written out explicitly or drawn with :meth:`FaultSchedule.seeded`
  from a :mod:`repro.rng` stream, so "10% of shards fail transiently on
  their first read" is one seeded expression that replays identically
  in every test, benchmark and chaos run.
- :class:`FaultInjectingSource` — a :class:`~repro.data.FeatureSource`
  decorator that executes the schedule: ``transient`` faults raise
  :class:`~repro.errors.TransientShardError` (retryable), ``slow``
  faults delay shard production through the
  :mod:`repro.resilience.backoff` chokepoint.
- :func:`corrupt_spill_entries` — applies a schedule's
  ``corrupt_spill`` faults by flipping bytes in a
  :class:`~repro.data.SpillCacheSource`'s on-disk entries, exercising
  its checksum-verified recovery path.
- :class:`FaultInjectingModel` — wraps a fitted predictor so a seeded,
  content-keyed subset of rows raises at predict time (the
  poisoned-row scenario the micro-batch quarantine bisects around).

Everything is counted through ``resilience.faults_injected`` (plus a
per-kind breakdown) so a chaos report can reconcile injected faults
against observed retries and recoveries.
"""

from __future__ import annotations

import threading
import zlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.source import FeatureSource, SourceDecorator
from repro.errors import ReproError, TransientShardError
from repro.obs import MetricsRegistry
from repro.resilience import backoff
from repro.rng import ensure_rng

#: The fault kinds a schedule may carry.
TRANSIENT = "transient"
SLOW = "slow"
CORRUPT_SPILL = "corrupt_spill"
FAULT_KINDS = (TRANSIENT, SLOW, CORRUPT_SPILL)


class PoisonedRowError(ReproError):
    """An injected per-row prediction failure (see FaultInjectingModel)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *what* happens to *which* shard, *when*.

    Parameters
    ----------
    shard:
        Stable shard index the fault applies to.
    kind:
        One of :data:`FAULT_KINDS`.
    attempts:
        1-based attempt numbers on which the fault fires.  ``(1,)``
        (the default) fails only the first read — the transient shape a
        bounded retry recovers from; ``(1, 2, 3)`` against a
        2-attempt policy models a hard failure.  Ignored for
        ``corrupt_spill`` (corruption is applied to the file once).
    delay_s:
        Injected delay for ``slow`` faults.
    """

    shard: int
    kind: str = TRANSIENT
    attempts: tuple[int, ...] = (1,)
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ValueError(
                f"attempts must be 1-based and non-empty, got {self.attempts}"
            )
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultSchedule:
    """An immutable plan of :class:`FaultSpec`\\ s, queryable per access.

    The schedule is pure data: it never mutates, so one schedule can
    drive a training run, its bit-identical re-run, and the assertion
    comparing them.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs = tuple(specs)
        self._by_shard_kind: dict[tuple[int, str], FaultSpec] = {}
        for spec in self.specs:
            key = (spec.shard, spec.kind)
            if key in self._by_shard_kind:
                raise ValueError(
                    f"duplicate fault for shard {spec.shard} kind "
                    f"{spec.kind!r}; merge the attempts into one spec"
                )
            self._by_shard_kind[key] = spec

    @classmethod
    def seeded(
        cls,
        n_shards: int,
        rate: float = 0.1,
        seed: int | np.random.Generator | None = 0,
        kind: str = TRANSIENT,
        attempts: tuple[int, ...] = (1,),
        delay_s: float = 0.0,
    ) -> "FaultSchedule":
        """Draw a schedule faulting ``rate`` of ``n_shards``, per seed.

        Deterministic: the same ``(n_shards, rate, seed, ...)`` always
        plans the same shard set.  At any ``rate > 0`` at least one
        shard faults, so a "10% faults" smoke test on 4 shards still
        exercises the recovery path.
        """
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        if n_shards == 0 or rate == 0:
            return cls()
        rng = ensure_rng(seed)
        hit = rng.random(n_shards) < rate
        if not hit.any():
            hit[int(rng.integers(n_shards))] = True
        return cls(
            [
                FaultSpec(shard=int(i), kind=kind, attempts=attempts,
                          delay_s=delay_s)
                for i in np.flatnonzero(hit)
            ]
        )

    def fault_for(self, shard: int, attempt: int, kind: str) -> FaultSpec | None:
        """The planned fault for this ``(shard, attempt, kind)``, if any."""
        spec = self._by_shard_kind.get((shard, kind))
        if spec is not None and attempt in spec.attempts:
            return spec
        return None

    def shards(self, kind: str | None = None) -> tuple[int, ...]:
        """The shard indices faulted (optionally for one kind), sorted."""
        return tuple(
            sorted(
                spec.shard
                for spec in self.specs
                if kind is None or spec.kind == kind
            )
        )

    def describe(self) -> dict:
        """JSON-serializable view (for chaos reports and bench output)."""
        return {
            "faults": [
                {
                    "shard": spec.shard,
                    "kind": spec.kind,
                    "attempts": list(spec.attempts),
                    "delay_s": spec.delay_s,
                }
                for spec in self.specs
            ]
        }

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        kinds = {kind: len(self.shards(kind)) for kind in FAULT_KINDS
                 if self.shards(kind)}
        return f"FaultSchedule({len(self.specs)} faults, {kinds})"


class FaultInjectingSource(SourceDecorator):
    """Execute a :class:`FaultSchedule` against the wrapped source.

    Attempt numbers count *per shard, per decorator instance*: the
    first ``shard(i)`` call is attempt 1, a retry is attempt 2, and so
    on — exactly the view a :class:`~repro.resilience.RetryPolicy`
    around this source has.  The counter is lock-guarded, so a
    prefetch worker and a consumer thread see one consistent sequence.

    Faults change *whether and when* a shard materialises, never its
    bytes: a run that survives its schedule is byte-identical to an
    uninjected run, which is the invariant every chaos assertion rests
    on.
    """

    def __init__(
        self,
        source: FeatureSource,
        schedule: FaultSchedule,
        registry: MetricsRegistry | None = None,
    ):
        super().__init__(source)
        self.schedule = schedule
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._injected = self.metrics.counter("resilience.faults_injected")
        self._by_kind = {
            kind: self.metrics.counter(f"resilience.faults_injected.{kind}")
            for kind in (TRANSIENT, SLOW)
        }
        self._lock = threading.Lock()
        self._attempts: dict[int, int] = {}

    def attempts(self, shard: int) -> int:
        """How many times ``shard`` has been requested so far."""
        with self._lock:
            return self._attempts.get(shard, 0)

    def shard(self, index: int):
        with self._lock:
            attempt = self._attempts.get(index, 0) + 1
            self._attempts[index] = attempt
        slow = self.schedule.fault_for(index, attempt, SLOW)
        if slow is not None:
            self._injected.inc()
            self._by_kind[SLOW].inc()
            backoff.sleep(slow.delay_s)
        spec = self.schedule.fault_for(index, attempt, TRANSIENT)
        if spec is not None:
            self._injected.inc()
            self._by_kind[TRANSIENT].inc()
            raise TransientShardError(
                f"injected transient fault: shard {index}, attempt {attempt} "
                f"(schedule attempts {spec.attempts})"
            )
        return self.source.shard(index)

    def __repr__(self) -> str:
        return f"FaultInjectingSource({self.source!r}, {self.schedule!r})"


def corrupt_spill_entries(schedule: FaultSchedule, spill) -> list[int]:
    """Apply a schedule's ``corrupt_spill`` faults to a spill cache.

    Flips bytes in the on-disk entry of every scheduled shard that is
    currently resident in ``spill`` (a
    :class:`~repro.data.SpillCacheSource`), returning the shard indices
    actually corrupted.  The cache's checksum verification then detects
    the damage on the next read and transparently re-encodes — the
    property ``tests/test_resilience_faults.py`` asserts.
    """
    corrupted = []
    for index in schedule.shards(CORRUPT_SPILL):
        path = spill._path(index)
        if not path.exists():
            continue
        blob = bytearray(path.read_bytes())
        if not blob:
            continue
        # Flip a byte in the middle of the archive: past the zip local
        # header, inside the stored array payload.
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        corrupted.append(index)
    return corrupted


class FaultInjectingModel:
    """Wrap a fitted predictor so a seeded subset of rows poisons it.

    A "poisoned row" is the serving-side failure unit: one request
    whose feature values drive the model into an exception (the paper's
    own Section 6.2 example is an unseen category crashing R's trees).
    The poison set here is *content-keyed* — a row is poisoned iff the
    CRC of its code vector, salted with ``seed``, falls below
    ``rate`` — so the same row fails in every batch composition,
    whichever worker predicts it, which is what lets the micro-batch
    bisection isolate it deterministically.
    """

    def __init__(self, model, rate: float = 0.02, seed: int = 0):
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        self.model = model
        self.rate = rate
        self.seed = seed

    def poisoned_mask(self, X) -> np.ndarray:
        """Boolean mask of poisoned rows in an encoded matrix."""
        codes = np.ascontiguousarray(X.codes, dtype=np.int64)
        salt = str(self.seed).encode()
        threshold = int(self.rate * 2**32)
        return np.fromiter(
            (
                zlib.crc32(salt + codes[i].tobytes()) < threshold
                for i in range(codes.shape[0])
            ),
            dtype=bool,
            count=codes.shape[0],
        )

    def predict(self, X) -> np.ndarray:
        poisoned = np.flatnonzero(self.poisoned_mask(X))
        if poisoned.size:
            raise PoisonedRowError(
                f"injected poisoned row(s) at batch position(s) "
                f"{poisoned.tolist()[:8]} of {X.n_rows}"
            )
        return self.model.predict(X)

    def __getattr__(self, name: str):
        # Everything predict-adjacent (predict_proba, classes_, ...)
        # delegates to the wrapped model.
        return getattr(self.model, name)
