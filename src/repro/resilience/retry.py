"""Bounded retries with deterministic, seeded exponential backoff.

Transient failures — a flaky filesystem read, an injected
:class:`~repro.errors.TransientShardError`, a remote store hiccup —
should cost a bounded delay, not a multi-hour training run.
:class:`RetryPolicy` states the whole recovery contract as data:

- **Bounded attempts**: ``max_attempts`` total tries; the last failure
  re-raises with its original traceback.
- **Deterministic backoff**: delays grow exponentially from
  ``base_delay_s`` and are jittered by a :mod:`repro.rng`-seeded draw,
  so the *entire* backoff schedule is a pure function of the policy's
  parameters — reproducible in tests, benchmarks, and incident
  re-runs (``tests/test_resilience_retry.py`` holds the property).
- **Retryable allowlist**: only exception types listed in
  ``retryable`` are retried; anything else (a genuine bug, a
  ``KeyboardInterrupt``) propagates on the first raise.

The policy object is frozen and stateless, so one instance can be
shared by any number of threads (the prefetch workers do).  Metrics are
the caller's: :meth:`call` accepts a registry and accounts
``resilience.retries`` / ``resilience.giveups`` there.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.resilience import backoff
from repro.rng import ensure_rng

#: Exceptions retried by default: real I/O errors and the injected
#: :class:`~repro.errors.TransientShardError` (an ``OSError`` subclass).
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (OSError,)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with seeded exponential-backoff jitter.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (``1`` disables retrying).
    base_delay_s:
        Delay before the first retry; each further retry multiplies it
        by ``multiplier``, capped at ``max_delay_s``.
    multiplier:
        Exponential growth factor of the backoff.
    max_delay_s:
        Upper bound on any single delay (applied after jitter).
    jitter:
        Fractional jitter amplitude: each delay is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]``.  ``0``
        disables jitter entirely.
    retryable:
        Exception types eligible for retry; everything else propagates
        immediately.
    seed:
        Seed of the jitter stream.  The full schedule is a pure
        function of the policy fields, so two policies with equal
        parameters back off identically.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ValueError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )
        for kind in self.retryable:
            if not (isinstance(kind, type)
                    and issubclass(kind, BaseException)):
                raise TypeError(
                    f"retryable must hold exception types, got {kind!r}"
                )

    def backoff_schedule(self) -> tuple[float, ...]:
        """The delays before retries 1..``max_attempts - 1``, in order.

        Computed fresh from ``seed`` on every call, so the schedule is
        identical however many times (or from however many threads) it
        is read — the determinism the property tests pin down.
        """
        rng = ensure_rng(self.seed)
        delays = []
        for retry in range(self.max_attempts - 1):
            delay = self.base_delay_s * self.multiplier ** retry
            if self.jitter:
                delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            delays.append(min(delay, self.max_delay_s))
        return tuple(delays)

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is eligible for a retry."""
        return isinstance(error, self.retryable)

    def call(
        self,
        fn: Callable[[], Any],
        registry=None,
        describe: str = "operation",
        sleep: Callable[[float], None] = backoff.sleep,
    ) -> Any:
        """Run ``fn`` under this policy; returns its result.

        Retries only allowlisted exceptions, sleeping the scheduled
        backoff between attempts.  When attempts are exhausted the last
        failure re-raises unchanged (original traceback preserved).

        Parameters
        ----------
        fn:
            Zero-argument callable to protect.
        registry:
            Optional :class:`~repro.obs.MetricsRegistry`; each retry
            increments ``resilience.retries`` and each exhaustion
            ``resilience.giveups`` there.
        describe:
            Label for the operation, recorded on the give-up note
            attached to the final exception.
        sleep:
            Injectable delay function (tests pass a recorder to assert
            the schedule without waiting it out).
        """
        delays = self.backoff_schedule()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as error:
                if not self.is_retryable(error):
                    raise
                if attempt == self.max_attempts:
                    if registry is not None:
                        registry.counter("resilience.giveups").inc()
                    error.add_note(
                        f"retry policy exhausted: {describe} failed on "
                        f"all {self.max_attempts} attempts"
                    )
                    raise
                if registry is not None:
                    registry.counter("resilience.retries").inc()
                sleep(delays[attempt - 1])
        raise AssertionError("unreachable: the loop returns or raises")
