"""Chaos soak: training and serving under faults, correctness asserted.

Fault injection (:mod:`repro.resilience.faults`) and recovery
machinery (:class:`~repro.resilience.RetryPolicy`,
:class:`~repro.resilience.CheckpointManager`, the serving plane's load
shedding and quarantine) are only trustworthy together, so this module
runs them together and *checks the answers*:

- **Training leg** (:func:`chaos_training_run`) — fits a clean
  baseline, then the same model under a seeded transient-fault
  schedule with retrying prefetch, then a third run that is killed
  after ``kill_after`` shard steps and resumed from its checkpoint.
  All three must produce bit-identical parameter arrays; a chaos run
  that merely *finishes* proves nothing.
- **Serving leg** (:func:`chaos_serving_run`) — replays one request
  stream through a clean server and through a server whose model is
  wrapped in :class:`~repro.resilience.FaultInjectingModel`, with a
  bounded admission queue and quarantine enabled.  Every admitted,
  non-poisoned request must answer exactly what the clean server
  answered; poisoned rows must surface as
  :class:`~repro.resilience.PoisonedRowError`, shed requests and
  expired deadlines must match the server's own accounting.

- **Process leg** (:func:`chaos_process_run`) — the process-parallel
  tier (:mod:`repro.parallel`) under injected worker death: a prefetch
  pass whose first worker is killed after one exported shard must
  deliver byte-identical shards to the serial read and leave no
  orphaned shared-memory segment; a data-parallel FISTA fit with a
  worker killed mid-session must stay bit-identical to the serial fit.
  Both recoveries must be *counted* (``parallel.*.worker_deaths`` /
  ``fallback_shards``) — silent recovery is indistinguishable from the
  fault never firing.

:func:`chaos_soak` runs all three legs and folds the verdicts into one
:class:`ChaosReport` (``repro chaos`` prints its :meth:`render`).
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.strategies import no_join_strategy
from repro.data.prefetch import PrefetchingSource
from repro.data.source import FeatureSource, SourceDecorator
from repro.data.spec import SourceSpec
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServerOverloadedError,
)
from repro.obs import MetricsRegistry
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import (
    FaultInjectingModel,
    FaultInjectingSource,
    FaultSchedule,
    PoisonedRowError,
)
from repro.resilience.retry import RetryPolicy

#: Streaming models whose training loop can checkpoint (epoch-looped
#: paths; count/histogram ``fit_stream`` models cannot be cut mid-pass).
CHAOS_TRAINABLE = ("ann", "lr_l1")


class ChaosKilledError(ReproError):
    """The kill switch fired: the simulated process death mid-training.

    Deliberately *not* an :class:`OSError`: a process crash is not a
    transient read, so no :class:`~repro.resilience.RetryPolicy` may
    swallow it — it must reach the top of ``fit`` like a real SIGKILL
    would end it.
    """


class KillSwitchSource(SourceDecorator):
    """Kill the pass after ``kill_after`` shards have been delivered.

    Wraps the *outermost* source (after prefetch), and overrides
    :meth:`iter_shards` around the wrapped iterator rather than relying
    on the base class's per-index loop — otherwise a wrapped
    :class:`~repro.data.PrefetchingSource`'s own background pass would
    be silently bypassed.  The counter spans epochs: "delivered" means
    shards the *trainer consumed*, which is exactly the cursor a
    checkpoint records.
    """

    def __init__(self, source: FeatureSource, kill_after: int):
        if kill_after < 1:
            raise ValueError(f"kill_after must be >= 1, got {kill_after}")
        super().__init__(source)
        self.kill_after = kill_after
        self.delivered = 0

    def shard(self, index: int):
        return self.source.shard(index)

    def iter_shards(self, order=None):
        for item in self.source.iter_shards(order):
            if self.delivered >= self.kill_after:
                raise ChaosKilledError(
                    f"kill switch: {self.delivered} shards delivered, "
                    f"simulating process death"
                )
            self.delivered += 1
            yield item


def model_arrays(model) -> list[np.ndarray]:
    """Every numpy array reachable from the model's state, in stable order.

    Walks ``vars(model)`` (attribute names sorted) through nested
    lists/tuples/dicts.  This is the comparison basis for the
    bit-identity assertions: two models are "the same fit" iff their
    array lists match pairwise in shape, dtype and bytes.
    """
    out: list[np.ndarray] = []

    def walk(value) -> None:
        if isinstance(value, np.ndarray):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                walk(item)
        elif isinstance(value, dict):
            for key in sorted(value, key=repr):
                walk(value[key])

    state = vars(model)
    for name in sorted(state):
        walk(state[name])
    return out


def models_identical(a, b) -> bool:
    """Whether two fitted models hold bit-identical parameter arrays."""
    xs, ys = model_arrays(a), model_arrays(b)
    if len(xs) != len(ys):
        return False
    return all(
        x.shape == y.shape and x.dtype == y.dtype and np.array_equal(x, y)
        for x, y in zip(xs, ys)
    )


def _counter_value(registry: MetricsRegistry, name: str) -> int | float:
    metric = registry.get(name)
    return 0 if metric is None else metric.value


def chaos_training_run(
    dataset,
    model_key: str = "ann",
    *,
    n_shards: int = 6,
    epochs: int = 2,
    fault_rate: float = 0.25,
    kill_after: int | None = None,
    seed: int = 0,
    scale=None,
    checkpoint_dir: str | Path | None = None,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Train clean, under faults, and through a kill/resume; compare.

    Returns a JSON-serializable verdict dict whose ``ok`` is true iff
    the faulted fit and the killed-then-resumed fit both reproduced the
    clean baseline bit for bit *and* the machinery demonstrably fired
    (faults injected, retries taken, checkpoints written, one resume).

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.splits.SplitDataset`.
    model_key:
        One of :data:`CHAOS_TRAINABLE` (epoch-looped trainers only).
    n_shards, epochs:
        Shard layout and pass count; ``kill_after`` defaults to half
        the total shard steps so the kill lands mid-run.
    fault_rate:
        Fraction of shards given a first-attempt transient fault
        (:meth:`FaultSchedule.seeded` guarantees at least one).
    checkpoint_dir:
        Where the kill/resume leg checkpoints; a private temporary
        directory when omitted.
    """
    from repro.experiments.runner import make_streaming_model
    from repro.streaming import StreamingTrainer

    if model_key not in CHAOS_TRAINABLE:
        raise ValueError(
            f"chaos training needs a checkpointable streaming model "
            f"{CHAOS_TRAINABLE}, got {model_key!r}"
        )
    registry = registry if registry is not None else MetricsRegistry()
    mode = "incremental" if model_key == "lr_l1" else "exact"
    spec = SourceSpec(n_shards=n_shards)
    train = spec.split_sources(
        dataset, no_join_strategy(), splits=("train",), registry=registry
    )["train"]
    total_steps = epochs * train.n_shards
    if kill_after is None:
        kill_after = max(1, total_steps // 2)
    if not 1 <= kill_after < total_steps:
        raise ValueError(
            f"kill_after must lie in [1, {total_steps}) so the kill "
            f"lands mid-run, got {kill_after}"
        )

    def trainer(model, **extra) -> StreamingTrainer:
        return StreamingTrainer(
            model, epochs=epochs, seed=seed, mode=mode, **extra
        )

    def faulted(source: FeatureSource) -> FeatureSource:
        # Fresh wrappers per leg: attempt counters restart, so every
        # leg faces the same schedule from the same starting state.
        schedule = FaultSchedule.seeded(
            source.n_shards, rate=fault_rate, seed=seed
        )
        injected = FaultInjectingSource(source, schedule, registry=registry)
        return PrefetchingSource(
            injected,
            registry=registry,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0005, seed=seed
            ),
        )

    try:
        baseline = make_streaming_model(model_key, scale, seed)
        trainer(baseline).fit(train)

        survivor = make_streaming_model(model_key, scale, seed)
        trainer(survivor).fit(faulted(train))

        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as private:
            manager = CheckpointManager(
                checkpoint_dir if checkpoint_dir is not None else private,
                registry=registry,
            )
            victim = make_streaming_model(model_key, scale, seed)
            killer = KillSwitchSource(faulted(train), kill_after)
            killed = False
            try:
                trainer(
                    victim, checkpoint=manager, resume=True
                ).fit(killer)
            except ChaosKilledError:
                killed = True
            resumed = make_streaming_model(model_key, scale, seed)
            trainer(
                resumed, checkpoint=manager, resume=True
            ).fit(faulted(train))
    finally:
        train.close()

    counters = {
        name: _counter_value(registry, name)
        for name in (
            "resilience.faults_injected",
            "resilience.retries",
            "resilience.checkpoints",
            "resilience.resumes",
        )
    }
    verdict = {
        "model_key": model_key,
        "n_shards": n_shards,
        "epochs": epochs,
        "fault_rate": fault_rate,
        "kill_after": kill_after,
        "killed": killed,
        "faulted_identical": models_identical(baseline, survivor),
        "resumed_identical": models_identical(baseline, resumed),
        **counters,
    }
    verdict["ok"] = bool(
        killed
        and verdict["faulted_identical"]
        and verdict["resumed_identical"]
        and counters["resilience.faults_injected"] >= 1
        and counters["resilience.retries"] >= 1
        and counters["resilience.checkpoints"] >= 1
        and counters["resilience.resumes"] >= 1
    )
    return verdict


def chaos_process_run(
    dataset,
    *,
    n_shards: int = 6,
    workers: int = 2,
    seed: int = 0,
) -> dict:
    """Kill process-pool workers mid-flight; assert identical answers.

    Two sub-legs over one ``train`` source:

    - a :class:`~repro.parallel.ProcessPrefetchingSource` pass whose
      worker 0 dies (``os._exit``) after exporting a single shard —
      every shard must still arrive, in order, byte-identical to a
      serial read, through the counted inline fallback;
    - a :class:`~repro.parallel.ProcessFISTAPasses` logistic fit with
      one worker hard-killed between the step-size estimation and the
      first iteration — coefficients must stay bit-identical to the
      serial ``fit_stream``.

    ``ok`` additionally requires that no shared-memory segment from
    this process survives either recovery (leak check by segment-name
    prefix).
    """
    from repro.ml.linear import L1LogisticRegression
    from repro.parallel import ProcessFISTAPasses, ProcessPrefetchingSource

    registry = MetricsRegistry()
    spec = SourceSpec(n_shards=n_shards)
    train = spec.split_sources(
        dataset, no_join_strategy(), splits=("train",), registry=registry
    )["train"]
    try:
        serial_bytes = [
            (int(i), X.codes.tobytes(), np.asarray(y).tobytes())
            for i, X, y in train.iter_shards(None)
        ]
        chaotic = ProcessPrefetchingSource(
            train,
            workers=workers,
            registry=registry,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0005, seed=seed
            ),
            _kill_after={0: 1},
        )
        chaos_bytes = [
            (int(i), X.codes.tobytes(), np.asarray(y).tobytes())
            for i, X, y in chaotic.iter_shards(None)
        ]

        baseline = L1LogisticRegression(max_iter=30)
        baseline.fit_stream(train)
        parallel_model = L1LogisticRegression(max_iter=30)
        with ProcessFISTAPasses(
            train, workers=workers, registry=registry
        ) as passes:
            passes._kill_worker(0)
            parallel_model.fit_stream(train, passes=passes)
    finally:
        train.close()

    leaked = _orphaned_segments()
    counters = {
        name: _counter_value(registry, name)
        for name in (
            "parallel.prefetch.worker_deaths",
            "parallel.prefetch.fallback_shards",
            "parallel.epochs.worker_deaths",
            "parallel.epochs.fallback_shards",
        )
    }
    verdict = {
        "n_shards": n_shards,
        "workers": workers,
        "prefetch_identical": chaos_bytes == serial_bytes,
        "fit_identical": models_identical(baseline, parallel_model),
        "leaked_segments": leaked,
        **counters,
    }
    verdict["ok"] = bool(
        verdict["prefetch_identical"]
        and verdict["fit_identical"]
        and not leaked
        and counters["parallel.prefetch.worker_deaths"] >= 1
        and counters["parallel.prefetch.fallback_shards"] >= 1
        and counters["parallel.epochs.worker_deaths"] >= 1
        and counters["parallel.epochs.fallback_shards"] >= 1
    )
    return verdict


def _orphaned_segments() -> list[str]:
    """Shared-memory segments this process created and never reclaimed."""
    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():  # non-Linux: no visible segment listing
        return []
    prefix = f"reprop{os.getpid()}"
    return sorted(p.name for p in shm_root.iterdir() if p.name.startswith(prefix))


def chaos_serving_run(
    dataset,
    model_key: str = "dt_gini",
    *,
    rows: int = 160,
    poison_rate: float = 0.08,
    max_queue_rows: int = 16,
    deadline_rows: int = 4,
    seed: int = 0,
    scale=None,
) -> dict:
    """Serve one request stream clean and under chaos; compare answers.

    The chaos server's model poisons a content-keyed fraction of rows,
    its admission queue is bounded below the stream length (so shedding
    *must* happen; shed requests are retried after an explicit flush,
    mimicking a client honouring back-pressure), and quarantine
    bisection isolates poisoned rows.  ``deadline_rows`` extra requests
    are submitted with a microsecond deadline and must all expire.

    ``ok`` is true iff every admitted non-poisoned request matched the
    clean server's answer, at least one row was poisoned (when
    ``poison_rate > 0``) and the server's shed/quarantine/deadline
    accounting equals what the client actually observed.
    """
    from repro.experiments.runner import fit_pipeline
    from repro.serving.artifacts import artifact_from_pipeline
    from repro.serving.benchmark import _request_stream
    from repro.serving.server import PredictionServer

    pipeline = fit_pipeline(dataset, model_key, no_join_strategy(), scale=scale)
    artifact = artifact_from_pipeline(pipeline, dataset.schema)
    chaos_artifact = dataclasses.replace(
        artifact,
        model=FaultInjectingModel(artifact.model, rate=poison_rate, seed=seed),
    )

    with PredictionServer(
        artifact, dataset.schema, max_wait_s=None, background_flush=False
    ) as clean_server:
        requests = _request_stream(clean_server, dataset, rows)
        clean = [clean_server.predict_one(row) for row in requests]

    shed = 0
    poisoned: list[int] = []
    mismatched = 0
    expired = 0
    with PredictionServer(
        chaos_artifact,
        dataset.schema,
        max_wait_s=None,
        background_flush=False,
        max_queue_rows=max_queue_rows,
        quarantine=True,
    ) as server:
        handles = []
        for row in requests:
            try:
                handles.append(server.submit(row))
            except ServerOverloadedError:
                # A well-behaved client's response to back-pressure:
                # drain, then resubmit the shed request.
                shed += 1
                server.flush()
                handles.append(server.submit(row))
        server.flush()
        for index, handle in enumerate(handles):
            try:
                answer = handle.result(timeout=60.0)
            except PoisonedRowError:
                poisoned.append(index)
            else:
                if answer != clean[index]:
                    mismatched += 1
        # The deadline leg: admission long before the flush, with a
        # deadline only a time machine could meet.
        late = [
            server.submit(requests[i % len(requests)], deadline_s=1e-6)
            for i in range(deadline_rows)
        ]
        server.flush()
        for handle in late:
            try:
                handle.result(timeout=60.0)
            except DeadlineExceededError:
                expired += 1
        stats = server.stats()

    verdict = {
        "model_key": model_key,
        "rows": rows,
        "poison_rate": poison_rate,
        "max_queue_rows": max_queue_rows,
        "mismatched": mismatched,
        "shed": shed,
        "poisoned_rows": len(poisoned),
        "deadline_rows": deadline_rows,
        "deadline_expired": expired,
        "stats": stats.as_dict(),
    }
    verdict["ok"] = bool(
        mismatched == 0
        and shed >= 1
        and (poison_rate == 0 or poisoned)
        and expired == deadline_rows
        and stats.shed_requests == shed
        and stats.rows_quarantined == len(poisoned)
        and stats.deadline_expired == expired
    )
    return verdict


@dataclass
class ChaosReport:
    """All legs' verdicts, renderable for ``repro chaos``."""

    dataset: str
    training: dict
    serving: dict
    process: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every chaos assertion held."""
        return bool(
            self.training.get("ok")
            and self.serving.get("ok")
            and (not self.process or self.process.get("ok"))
        )

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "ok": self.ok,
            "training": self.training,
            "serving": self.serving,
            "process": self.process,
        }

    def render(self) -> str:
        t, s = self.training, self.serving
        check = {True: "ok", False: "FAILED"}
        lines = [
            f"Chaos soak: {self.dataset}",
            (
                f"  training [{check[bool(t.get('ok'))]}] "
                f"{t['model_key']}, {t['n_shards']} shards x "
                f"{t['epochs']} epoch(s), killed after shard "
                f"{t['kill_after']}"
            ),
            (
                f"    faults injected {t['resilience.faults_injected']}, "
                f"retries {t['resilience.retries']}, checkpoints "
                f"{t['resilience.checkpoints']}, resumes "
                f"{t['resilience.resumes']}"
            ),
            (
                f"    bit-identical to clean baseline: faulted "
                f"{t['faulted_identical']}, resumed {t['resumed_identical']}"
            ),
            (
                f"  serving  [{check[bool(s.get('ok'))]}] "
                f"{s['model_key']}, {s['rows']} requests, queue bound "
                f"{s['max_queue_rows']}"
            ),
            (
                f"    shed {s['shed']}, quarantined {s['poisoned_rows']} "
                f"poisoned row(s), {s['deadline_expired']}/"
                f"{s['deadline_rows']} deadline(s) expired, "
                f"{s['mismatched']} mismatched answer(s)"
            ),
        ]
        p = self.process
        if p:
            lines += [
                (
                    f"  process  [{check[bool(p.get('ok'))]}] "
                    f"{p['n_shards']} shards across {p['workers']} "
                    f"worker(s), worker 0 killed in both pools"
                ),
                (
                    f"    prefetch deaths "
                    f"{p['parallel.prefetch.worker_deaths']} / fallbacks "
                    f"{p['parallel.prefetch.fallback_shards']}, epoch "
                    f"deaths {p['parallel.epochs.worker_deaths']} / "
                    f"fallbacks {p['parallel.epochs.fallback_shards']}, "
                    f"leaked segments {len(p['leaked_segments'])}"
                ),
                (
                    f"    identical to serial: shards "
                    f"{p['prefetch_identical']}, fit {p['fit_identical']}"
                ),
            ]
        lines.append(f"chaos soak {'PASSED' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def chaos_soak(
    dataset,
    train_model: str = "ann",
    serve_model: str = "dt_gini",
    *,
    n_shards: int = 6,
    epochs: int = 2,
    fault_rate: float = 0.25,
    kill_after: int | None = None,
    rows: int = 160,
    poison_rate: float = 0.08,
    max_queue_rows: int = 16,
    seed: int = 0,
    scale=None,
    checkpoint_dir: str | Path | None = None,
    process_workers: int = 2,
) -> ChaosReport:
    """Run all three chaos legs over one dataset (see the leg functions)."""
    training = chaos_training_run(
        dataset,
        train_model,
        n_shards=n_shards,
        epochs=epochs,
        fault_rate=fault_rate,
        kill_after=kill_after,
        seed=seed,
        scale=scale,
        checkpoint_dir=checkpoint_dir,
    )
    serving = chaos_serving_run(
        dataset,
        serve_model,
        rows=rows,
        poison_rate=poison_rate,
        max_queue_rows=max_queue_rows,
        seed=seed,
        scale=scale,
    )
    process = chaos_process_run(
        dataset, n_shards=n_shards, workers=process_workers, seed=seed
    )
    return ChaosReport(
        dataset=dataset.name,
        training=training,
        serving=serving,
        process=process,
    )
