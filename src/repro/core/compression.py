"""Foreign-key domain compression (paper Section 6.1).

Foreign keys act as good feature representatives, but their huge domains
make trees unreadable.  Both methods here build a lossy mapping
``f: [m] → [l]`` from the FK domain onto a user-chosen budget ``l``:

- :class:`RandomHashingCompressor` — the unsupervised hashing trick:
  each level hashes to a uniform-random bucket.
- :class:`SortBasedCompressor` — the paper's supervised greedy method:
  sort levels by their conditional target distribution estimated on the
  training split, take the ``l - 1`` largest adjacent differences as
  group boundaries (ties broken randomly), and map each level to its
  group.  Grouping levels with similar conditional distributions keeps
  ``H(Y | f(FK))`` close to ``H(Y | FK)``.

  The paper words the sort key as ``H(Y | FK = z)``, but the raw entropy
  is symmetric in the classes — it would merge pure-class-0 levels with
  pure-class-1 levels and *destroy* information, contradicting the
  stated intuition.  For binary targets we therefore sort by the
  empirical ``P(Y = 1 | FK = z)``, the signed sufficient statistic of
  that entropy, which realises the intended "group levels whose
  conditional distribution is comparable" behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.encoding import CategoricalMatrix
from repro.rng import ensure_rng


def _conditional_entropies(
    codes: np.ndarray, y: np.ndarray, n_levels: int
) -> np.ndarray:
    """``H(Y | FK = z)`` in bits per level; unseen levels get the prior ``H(Y)``."""
    n_classes = max(int(y.max()) + 1, 2) if y.size else 2
    counts = np.zeros((n_levels, n_classes))
    np.add.at(counts, (codes, y), 1.0)
    totals = counts.sum(axis=1)
    p = counts / np.where(totals > 0, totals, 1.0)[:, np.newaxis]
    terms = p * np.log2(np.where(p > 0, p, 1.0))
    h = -terms.sum(axis=1)
    prior = np.bincount(y, minlength=n_classes).astype(float)
    prior /= prior.sum()
    prior_terms = prior * np.log2(np.where(prior > 0, prior, 1.0))
    h_prior = -prior_terms.sum()
    h[totals == 0] = h_prior
    return h


def _positive_rates(codes: np.ndarray, y: np.ndarray, n_levels: int) -> np.ndarray:
    """Empirical ``P(Y = 1 | FK = z)``; unseen levels get the prior rate."""
    counts = np.zeros((n_levels, 2))
    np.add.at(counts, (codes, np.clip(y, 0, 1)), 1.0)
    totals = counts.sum(axis=1)
    rates = counts[:, 1] / np.where(totals > 0, totals, 1.0)
    prior = float(np.mean(np.clip(y, 0, 1))) if y.size else 0.5
    rates[totals == 0] = prior
    return rates


class _BaseCompressor:
    """Shared fit/transform plumbing for domain compressors."""

    def __init__(self, budget: int, seed: int | np.random.Generator | None = 0):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.seed = seed

    def _check_fitted(self) -> None:
        if not hasattr(self, "mapping_"):
            raise NotFittedError(f"{type(self).__name__} must be fitted first")

    def transform(self, codes: np.ndarray) -> np.ndarray:
        """Map original FK codes onto the compressed domain ``[0, budget)``."""
        self._check_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.mapping_.shape[0]):
            raise ValueError("codes out of range for the fitted FK domain")
        return self.mapping_[codes]

    def compress_feature(
        self, X: CategoricalMatrix, feature: str
    ) -> CategoricalMatrix:
        """Return ``X`` with ``feature`` recoded into the compressed domain."""
        j = X.index_of(feature)
        return X.replace_column(
            j,
            self.transform(X.column(j)),
            self.n_groups_,
            name=f"{feature}_c{self.n_groups_}",
        )

    @property
    def n_groups_(self) -> int:
        """Size of the compressed domain (= min(budget, original size))."""
        self._check_fitted()
        return int(self.mapping_.max()) + 1


class RandomHashingCompressor(_BaseCompressor):
    """The hashing trick: levels map to uniform-random buckets.

    Parameters
    ----------
    budget:
        Target domain size ``l``.
    seed:
        Hashing randomness; reproducible given the seed.
    """

    def fit(
        self, codes: np.ndarray, y: np.ndarray | None = None, n_levels: int | None = None
    ) -> "RandomHashingCompressor":
        """Build the level → bucket mapping.

        ``y`` is accepted (and ignored) so both compressors share a
        calling convention.  ``n_levels`` defaults to ``max(codes)+1``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        m = int(n_levels if n_levels is not None else codes.max() + 1)
        if m < 1:
            raise ValueError("cannot infer a positive domain size")
        rng = ensure_rng(self.seed)
        if self.budget >= m:
            self.mapping_ = np.arange(m, dtype=np.int64)
        else:
            self.mapping_ = rng.integers(0, self.budget, size=m)
        return self


class SortBasedCompressor(_BaseCompressor):
    """Supervised compression by sorted conditional target distribution.

    Parameters
    ----------
    budget:
        Target domain size ``l``.
    seed:
        Tie-breaking randomness for equal adjacent differences.
    """

    def fit(
        self, codes: np.ndarray, y: np.ndarray, n_levels: int | None = None
    ) -> "SortBasedCompressor":
        """Estimate ``P(Y=1 | FK = z)`` on ``(codes, y)`` and cut the sorted order."""
        codes = np.asarray(codes, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        if codes.shape != y.shape:
            raise ValueError("codes and y must have equal length")
        m = int(n_levels if n_levels is not None else codes.max() + 1)
        if m < 1:
            raise ValueError("cannot infer a positive domain size")
        if self.budget >= m:
            self.mapping_ = np.arange(m, dtype=np.int64)
            self.rates_ = _positive_rates(codes, y, m)
            return self
        rng = ensure_rng(self.seed)
        rates = _positive_rates(codes, y, m)
        order = np.argsort(rates, kind="stable")
        sorted_h = rates[order]
        diffs = np.diff(sorted_h)
        # Random jitter breaks ties among equal differences, per the paper.
        jitter = rng.random(diffs.shape[0]) * 1e-12
        boundaries = np.sort(
            np.argsort(diffs + jitter)[::-1][: self.budget - 1]
        )
        group_of_rank = np.zeros(m, dtype=np.int64)
        group = 0
        boundary_set = set(boundaries.tolist())
        for rank in range(m):
            group_of_rank[rank] = group
            if rank in boundary_set:
                group += 1
        mapping = np.empty(m, dtype=np.int64)
        mapping[order] = group_of_rank
        self.mapping_ = mapping
        self.rates_ = rates
        return self
