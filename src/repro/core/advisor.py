"""The join-safety advisor: decide joins from tuple ratios alone.

The practical upshot of the paper: whether a KFK join is safe to avoid
can be judged from the *tuple ratio* — the number of training examples
per dimension row — which needs only the dimension table's cardinality,
never its contents.  The thresholds differ by model family, and the
paper's headline result is that they are *lower* for high-capacity
models than for linear ones:

=================  =========  ==============================================
family             threshold  source
=================  =========  ==============================================
``decision_tree``        3.0  Section 3.3 ("the tuple ratio threshold being
                              only about 3x") and Figure 2(B)
``ann``                  3.0  same observation for the MLP
``rbf_svm``              6.0  Section 3.3 / Figure 3(B)
``linear``              20.0  the original Hamlet result the paper inherits
``1nn``                100.0  Figure 3(A): deviation starts near ratio 100
=================  =========  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strategies import JoinStrategy, avoid_dimensions_strategy, join_all_strategy
from repro.relational.schema import StarSchema

#: Tuple-ratio thresholds per model family (see module docstring).
FAMILY_THRESHOLDS: dict[str, float] = {
    "decision_tree": 3.0,
    "ann": 3.0,
    "rbf_svm": 6.0,
    "linear": 20.0,
    "1nn": 100.0,
}


@dataclass(frozen=True)
class JoinSafetyDecision:
    """Advice for one dimension table."""

    dimension: str
    fk_column: str
    tuple_ratio: float | None
    threshold: float
    safe_to_avoid: bool
    reason: str

    def __str__(self) -> str:
        verdict = "AVOID join" if self.safe_to_avoid else "KEEP join"
        ratio = "N/A" if self.tuple_ratio is None else f"{self.tuple_ratio:.1f}"
        return (
            f"{self.dimension}: {verdict} (tuple ratio {ratio} vs "
            f"threshold {self.threshold:g}; {self.reason})"
        )


@dataclass
class JoinSafetyReport:
    """Advice for a whole star schema under one model family."""

    model_family: str
    threshold: float
    decisions: list[JoinSafetyDecision] = field(default_factory=list)

    @property
    def avoidable(self) -> list[str]:
        """Dimensions judged safe to avoid."""
        return [d.dimension for d in self.decisions if d.safe_to_avoid]

    def recommended_strategy(self) -> JoinStrategy:
        """The strategy the advice implies.

        Avoid every dimension judged safe; if none is, fall back to
        JoinAll.
        """
        avoidable = self.avoidable
        if not avoidable:
            return join_all_strategy()
        return avoid_dimensions_strategy(*avoidable, label="Advised")

    def __str__(self) -> str:
        lines = [
            f"Join-safety advice for model family {self.model_family!r} "
            f"(threshold {self.threshold:g}x):"
        ]
        lines += [f"  - {d}" for d in self.decisions]
        return "\n".join(lines)


def advise(
    schema: StarSchema,
    model_family: str,
    train_rows: int | None = None,
) -> JoinSafetyReport:
    """Advise which KFK joins are safe to avoid for a model family.

    Parameters
    ----------
    schema:
        The star schema under consideration.
    model_family:
        One of :data:`FAMILY_THRESHOLDS`.
    train_rows:
        Number of *training* examples.  Defaults to the fact table's
        cardinality; pass the training-split size when the fact table
        also holds validation/test rows (Table 1 counts ratios against
        the training split).
    """
    try:
        threshold = FAMILY_THRESHOLDS[model_family]
    except KeyError:
        raise ValueError(
            f"unknown model family {model_family!r}; "
            f"available: {sorted(FAMILY_THRESHOLDS)}"
        ) from None
    n_train = schema.fact.n_rows if train_rows is None else train_rows
    if n_train <= 0:
        source = (
            "resolved from the fact table's cardinality"
            if train_rows is None
            else "passed as train_rows"
        )
        raise ValueError(
            f"advise needs a positive training-row count to form tuple "
            f"ratios; got n_train={n_train} ({source})"
        )
    report = JoinSafetyReport(model_family=model_family, threshold=threshold)
    for name in schema.dimension_names:
        constraint = schema.constraint(name)
        if constraint.fk_column in schema.open_fks:
            report.decisions.append(
                JoinSafetyDecision(
                    dimension=name,
                    fk_column=constraint.fk_column,
                    tuple_ratio=None,
                    threshold=threshold,
                    safe_to_avoid=False,
                    reason="foreign key has an open domain and cannot be a feature",
                )
            )
            continue
        ratio = n_train / schema.dimension(name).n_rows
        safe = ratio >= threshold
        reason = (
            "enough training examples per foreign-key value"
            if safe
            else "too few training examples per foreign-key value; "
            "avoiding may add variance"
        )
        report.decisions.append(
            JoinSafetyDecision(
                dimension=name,
                fk_column=constraint.fk_column,
                tuple_ratio=ratio,
                threshold=threshold,
                safe_to_avoid=safe,
                reason=reason,
            )
        )
    return report
