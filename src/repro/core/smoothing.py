"""Unseen-foreign-key smoothing (paper Section 6.2).

Large FK domains mean some levels never occur in the training split yet
legitimately appear at test time (they are still inside the closed
domain — this is *not* cold start).  Categorical tree implementations
crash on them; the fix is to reassign each unseen level to a seen one
before prediction:

- :class:`RandomSmoother` — reassign each unseen level to a uniformly
  random seen level.
- :class:`ForeignFeatureSmoother` — use the dimension table as side
  information: reassign an unseen level to the seen level whose foreign
  feature vector ``X_R`` has minimum l0 distance (count of mismatching
  features), ties broken randomly.  When ``X_R`` carries the true
  signal this preserves it; when ``X_R`` is noise it degrades to the
  random smoother — exactly the trade-off Figure 11 shows.

Both smoothers remap codes *within the original domain*, so smoothed
matrices stay compatible with models fitted under ``unseen='error'``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SchemaError
from repro.ml.encoding import CategoricalMatrix
from repro.relational.schema import StarSchema
from repro.rng import ensure_rng


class _BaseSmoother:
    """Shared plumbing: track seen levels, remap unseen ones."""

    def __init__(self, seed: int | np.random.Generator | None = 0):
        self.seed = seed

    def _seen_from(self, train_codes: np.ndarray, n_levels: int) -> np.ndarray:
        train_codes = np.asarray(train_codes, dtype=np.int64)
        if train_codes.size == 0:
            raise ValueError("cannot fit a smoother on zero training codes")
        if train_codes.min() < 0 or train_codes.max() >= n_levels:
            raise ValueError("training codes out of range for the FK domain")
        seen = np.zeros(n_levels, dtype=bool)
        seen[train_codes] = True
        return seen

    def _check_fitted(self) -> None:
        if not hasattr(self, "mapping_"):
            raise NotFittedError(f"{type(self).__name__} must be fitted first")

    def transform(self, codes: np.ndarray) -> np.ndarray:
        """Remap codes: seen levels pass through, unseen ones are reassigned."""
        self._check_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.mapping_.shape[0]):
            raise ValueError("codes out of range for the fitted FK domain")
        return self.mapping_[codes]

    def smooth_feature(self, X: CategoricalMatrix, feature: str) -> CategoricalMatrix:
        """Return ``X`` with ``feature``'s unseen levels reassigned."""
        j = X.index_of(feature)
        return X.replace_column(j, self.transform(X.column(j)), X.n_levels[j])

    @property
    def n_unseen_(self) -> int:
        """How many domain levels were unseen during training."""
        self._check_fitted()
        return int((~self.seen_).sum())


class RandomSmoother(_BaseSmoother):
    """Reassign each unseen FK level to a uniformly random seen level."""

    def fit(self, train_codes: np.ndarray, n_levels: int) -> "RandomSmoother":
        """Learn the level mapping from the training split's codes."""
        seen = self._seen_from(train_codes, n_levels)
        rng = ensure_rng(self.seed)
        seen_levels = np.flatnonzero(seen)
        mapping = np.arange(n_levels, dtype=np.int64)
        unseen_levels = np.flatnonzero(~seen)
        if unseen_levels.size:
            mapping[unseen_levels] = rng.choice(seen_levels, size=unseen_levels.size)
        self.seen_ = seen
        self.mapping_ = mapping
        return self


class ForeignFeatureSmoother(_BaseSmoother):
    """Reassign unseen FK levels by nearest foreign-feature vector.

    Parameters
    ----------
    xr_codes:
        ``(n_levels, d_R)`` integer matrix: the dimension table's foreign
        feature codes indexed by FK code.  Build it with
        :meth:`from_schema` when a validated star schema is at hand.
    seed:
        Tie-breaking randomness.
    """

    def __init__(
        self,
        xr_codes: np.ndarray,
        seed: int | np.random.Generator | None = 0,
    ):
        super().__init__(seed=seed)
        xr_codes = np.asarray(xr_codes, dtype=np.int64)
        if xr_codes.ndim != 2:
            raise ValueError(
                f"xr_codes must be (n_levels, d_R), got shape {xr_codes.shape}"
            )
        self.xr_codes = xr_codes

    @classmethod
    def from_schema(
        cls,
        schema: StarSchema,
        dimension: str,
        seed: int | np.random.Generator | None = 0,
    ) -> "ForeignFeatureSmoother":
        """Build the smoother from a dimension table's foreign features."""
        table = schema.dimension(dimension)
        rid = schema.constraint(dimension).rid_column
        features = schema.foreign_features(dimension)
        if not features:
            raise SchemaError(
                f"dimension {dimension!r} has no foreign features to smooth with"
            )
        n_levels = len(table.domain(rid))
        xr = np.zeros((n_levels, len(features)), dtype=np.int64)
        rid_codes = table.codes(rid)
        for j, feature in enumerate(features):
            xr[rid_codes, j] = table.codes(feature)
        return cls(xr, seed=seed)

    #: Element budget per broadcast block (pattern-chunk × seen); caps
    #: the transient mismatch/cumulative-count matrices at tens of MB.
    _CHUNK_BUDGET = 16_000_000

    def fit(
        self, train_codes: np.ndarray, n_levels: int | None = None
    ) -> "ForeignFeatureSmoother":
        """Learn the mapping: unseen level → l0-nearest seen level.

        Vectorized end to end — at realistic FK domain sizes
        (|D_FK| ≥ 1e5 with sparse training splits) the old per-level
        Python loop took minutes and dwarfed model training itself:

        - unseen levels are first deduplicated by their ``X_R`` pattern
          (levels with identical foreign features have identical
          candidate sets, and dimension attributes have small closed
          domains, so the distinct patterns are typically few);
        - per chunk of distinct patterns, the ``(chunk, n_seen)``
          mismatch counts accumulate one foreign feature at a time in
          the narrowest sufficient integer dtype (the flops of the 3-D
          broadcast, a fraction of its memory traffic);
        - ties are still broken uniformly and *independently per unseen
          level*: each level draws ``k ~ U{0, ties-1}`` and locates its
          k-th co-minimal seen level with one ``searchsorted`` over the
          offset-flattened cumulative tie counts.
        """
        n_levels = self.xr_codes.shape[0] if n_levels is None else n_levels
        if n_levels != self.xr_codes.shape[0]:
            raise ValueError(
                f"n_levels {n_levels} does not match xr_codes rows "
                f"{self.xr_codes.shape[0]}"
            )
        seen = self._seen_from(train_codes, n_levels)
        rng = ensure_rng(self.seed)
        seen_levels = np.flatnonzero(seen)
        mapping = np.arange(n_levels, dtype=np.int64)
        unseen_levels = np.flatnonzero(~seen)
        if unseen_levels.size:
            seen_xr = self.xr_codes[seen_levels]
            n_seen, d_r = seen_xr.shape
            mism_dtype = np.int8 if d_r < 127 else np.int32
            patterns, inverse = np.unique(
                self.xr_codes[unseen_levels], axis=0, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            chunk = max(1, self._CHUNK_BUDGET // max(1, n_seen))
            for start in range(0, patterns.shape[0], chunk):
                block = patterns[start : start + chunk]
                mismatches = np.zeros((block.shape[0], n_seen), dtype=mism_dtype)
                for j in range(d_r):
                    mismatches += block[:, j, np.newaxis] != seen_xr[:, j]
                ties = mismatches == mismatches.min(axis=1, keepdims=True)
                # int32 cumulative counts: offsets stay below the chunk
                # budget, and matching dtypes keep searchsorted copy-free.
                cum = ties.cumsum(axis=1, dtype=np.int32)
                # The levels whose pattern falls in this chunk, each with
                # its own independent draw among its pattern's ties.
                members = np.flatnonzero(
                    (inverse >= start) & (inverse < start + block.shape[0])
                )
                local = inverse[members] - start
                totals = cum[local, -1]
                picks = np.minimum(
                    (rng.random(members.size) * totals).astype(np.int32),
                    totals - 1,
                )
                # Offset each pattern row so the flattened cumulative
                # counts are globally ascending; one searchsorted then
                # finds every level's (pick+1)-th tie position.
                stride = np.int32(n_seen + 1)
                flat = (
                    cum
                    + stride * np.arange(block.shape[0], dtype=np.int32)[:, np.newaxis]
                ).ravel()
                targets = (picks + 1 + stride * local).astype(np.int32)
                positions = np.searchsorted(flat, targets, side="left")
                mapping[unseen_levels[members]] = seen_levels[
                    positions - local * n_seen
                ]
        self.seen_ = seen
        self.mapping_ = mapping
        return self
