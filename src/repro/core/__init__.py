"""The paper's contribution: avoiding KFK joins safely.

- :mod:`repro.core.strategies` — the feature-set strategies compared
  throughout the paper: ``JoinAll`` (current practice), ``NoJoin``
  (avoid every avoidable join a priori), ``NoFK`` (join but drop the
  foreign keys), and per-dimension variants for the robustness study.
- :mod:`repro.core.advisor` — the decision rule practitioners apply:
  compare each dimension's tuple ratio against the model family's
  empirical threshold and recommend which joins to avoid.
- :mod:`repro.core.compression` — foreign-key domain compression
  (Section 6.1): the random hashing trick and the supervised sort-based
  conditional-entropy method.
- :mod:`repro.core.smoothing` — unseen-foreign-key smoothing
  (Section 6.2): random reassignment and the X_R-based minimum-l0 match.
"""

from repro.core.advisor import (
    FAMILY_THRESHOLDS,
    JoinSafetyDecision,
    JoinSafetyReport,
    advise,
)
from repro.core.compression import RandomHashingCompressor, SortBasedCompressor
from repro.core.smoothing import ForeignFeatureSmoother, RandomSmoother
from repro.core.strategies import (
    JoinStrategy,
    PartialJoinStrategy,
    StrategyMatrices,
    join_all_strategy,
    no_fk_strategy,
    no_join_strategy,
    avoid_dimensions_strategy,
)

__all__ = [
    "FAMILY_THRESHOLDS",
    "ForeignFeatureSmoother",
    "JoinSafetyDecision",
    "JoinSafetyReport",
    "JoinStrategy",
    "PartialJoinStrategy",
    "RandomHashingCompressor",
    "RandomSmoother",
    "SortBasedCompressor",
    "StrategyMatrices",
    "advise",
    "avoid_dimensions_strategy",
    "join_all_strategy",
    "no_fk_strategy",
    "no_join_strategy",
]
