"""Feature-set strategies: JoinAll, NoJoin, NoFK and per-dimension variants.

A strategy decides, per dimension table, whether its foreign features
are joined in or avoided, and whether foreign keys appear as features.
The paper's comparisons (Tables 2-6, every simulation figure) are
between strategies applied to the *same* star schema:

- **JoinAll** — join every dimension; features are
  ``X_S ∪ {usable FKs} ∪ all X_R`` (the widespread current practice).
- **NoJoin** — avoid every avoidable dimension a priori; features are
  ``X_S ∪ {usable FKs}`` (the approach under study).
- **NoFK** — join everything but drop the foreign keys; features are
  ``X_S ∪ all X_R`` (a lower bound when FKs carry no direct signal).
- **AvoidDimensions(names)** — avoid a chosen dimension subset, keeping
  everything else joined (Table 4's robustness study: NoR1, NoR2, ...).

Open-domain foreign keys (Section 3.1, Expedia's search id) are handled
uniformly: the FK itself is never a feature, and its dimension is never
avoidable, so its foreign features are joined under *every* strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.splits import SplitDataset
from repro.errors import SchemaError
from repro.ml.encoding import CategoricalMatrix
from repro.relational.join import join_subset
from repro.relational.schema import StarSchema


@dataclass(frozen=True)
class JoinStrategy:
    """A reproducible recipe for constructing the feature set.

    Attributes
    ----------
    name:
        Display name used in tables ("JoinAll", "NoJoin", "NoR1", ...).
    avoided:
        Dimension names whose foreign features are avoided a priori.
        ``None`` means "avoid every closed-FK dimension" (NoJoin),
        resolved lazily against the schema.
    include_fks:
        Whether usable (closed-domain) foreign keys are features.
    """

    name: str
    avoided: frozenset[str] | None = frozenset()
    include_fks: bool = True

    def avoided_for(self, schema: StarSchema) -> frozenset[str]:
        """Resolve the avoided-dimension set against a schema.

        Open-FK dimensions are never avoidable: their foreign key can't
        represent them, so their features must stay joined.
        """
        open_dims = {
            c.dimension for c in schema.constraints if c.fk_column in schema.open_fks
        }
        if self.avoided is None:
            return frozenset(schema.dimension_names) - open_dims
        unknown = self.avoided - set(schema.dimension_names)
        if unknown:
            raise SchemaError(
                f"strategy {self.name!r} avoids unknown dimensions "
                f"{sorted(unknown)}; schema has {schema.dimension_names}"
            )
        not_avoidable = self.avoided & open_dims
        if not_avoidable:
            raise SchemaError(
                f"strategy {self.name!r} cannot avoid open-FK dimensions "
                f"{sorted(not_avoidable)}"
            )
        return self.avoided

    def joined_dimensions(self, schema: StarSchema) -> list[str]:
        """Dimensions whose foreign features are materialised by the join."""
        avoided = self.avoided_for(schema)
        return [n for n in schema.dimension_names if n not in avoided]

    def feature_names(self, schema: StarSchema) -> list[str]:
        """The feature columns this strategy exposes, in stable order."""
        features = list(schema.home_features)
        if self.include_fks:
            features += schema.usable_fk_columns()
        for name in self.joined_dimensions(schema):
            features += schema.foreign_features(name)
        return features

    def matrices(self, dataset: SplitDataset) -> "StrategyMatrices":
        """Materialise the strategy's features for every split."""
        schema = dataset.schema
        joined = join_subset(schema, self.joined_dimensions(schema))
        X = CategoricalMatrix.from_table(joined, self.feature_names(schema))
        return StrategyMatrices(
            strategy=self,
            X_train=X.take_rows(dataset.train),
            y_train=dataset.labels("train"),
            X_validation=X.take_rows(dataset.validation),
            y_validation=dataset.labels("validation"),
            X_test=X.take_rows(dataset.test),
            y_test=dataset.labels("test"),
        )

    def streaming_matrices(
        self,
        dataset: SplitDataset,
        shard_rows: int | None = None,
        n_shards: int | None = None,
        split: str = "train",
        engine: str = "implicit",
    ) -> "repro.streaming.StreamingMatrices":  # noqa: F821
        """The out-of-core counterpart of :meth:`matrices`.

        Returns a :class:`~repro.streaming.StreamingMatrices` over one
        split, assembled shard by shard — each shard's matrix is exactly
        the corresponding row block of what :meth:`matrices` would
        build, but the full join is never materialised.
        ``engine="factorized"`` keeps each shard's KFK join factorized
        (see :class:`~repro.ml.sparse.FactorizedMatrix`).
        """
        from repro.streaming import ShardedDataset, StreamingMatrices

        return StreamingMatrices(
            ShardedDataset.from_split(
                dataset, shard_rows=shard_rows, n_shards=n_shards, split=split
            ),
            self,
            engine=engine,
        )


@dataclass
class StrategyMatrices:
    """Per-split feature matrices and labels produced by a strategy."""

    strategy: JoinStrategy
    X_train: CategoricalMatrix
    y_train: np.ndarray
    X_validation: CategoricalMatrix
    y_validation: np.ndarray
    X_test: CategoricalMatrix
    y_test: np.ndarray

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature columns shared by all three splits."""
        return self.X_train.names


def join_all_strategy() -> JoinStrategy:
    """The paper's JoinAll: everything joined, usable FKs included."""
    return JoinStrategy(name="JoinAll", avoided=frozenset(), include_fks=True)


def no_join_strategy() -> JoinStrategy:
    """The paper's NoJoin: avoid every avoidable dimension a priori."""
    return JoinStrategy(name="NoJoin", avoided=None, include_fks=True)


def no_fk_strategy() -> JoinStrategy:
    """The paper's NoFK: join everything, drop the foreign keys."""
    return JoinStrategy(name="NoFK", avoided=frozenset(), include_fks=False)


def avoid_dimensions_strategy(*names: str, label: str | None = None) -> JoinStrategy:
    """Avoid a chosen subset of dimensions (Table 4's NoR1/NoR2/...)."""
    if not names:
        raise ValueError("avoid_dimensions_strategy needs at least one dimension")
    return JoinStrategy(
        name=label or ("No" + ",".join(names)),
        avoided=frozenset(names),
        include_fks=True,
    )


@dataclass(frozen=True)
class PartialJoinStrategy(JoinStrategy):
    """Join only a chosen *subset of foreign features* per dimension.

    Section 5.2 observes that the FD axioms let foreign features be
    divided into arbitrary subsets before being avoided, "opening a new
    trade-off space between fully avoiding a foreign table and fully
    using it."  This strategy realises that space: dimensions listed in
    ``kept_features`` contribute only the named foreign features (the
    FK stays as a feature, representing the rest); unlisted dimensions
    behave as under JoinAll.

    ``kept_features`` maps dimension name → tuple of foreign feature
    names; an empty tuple degenerates to avoiding the dimension.
    """

    kept_features: tuple[tuple[str, tuple[str, ...]], ...] = ()

    @staticmethod
    def build(
        kept: dict[str, list[str]], label: str | None = None
    ) -> "PartialJoinStrategy":
        """Construct from a ``{dimension: [features]}`` mapping."""
        frozen = tuple(
            (dim, tuple(features)) for dim, features in sorted(kept.items())
        )
        name = label or (
            "Partial[" + "; ".join(f"{d}:{len(f)}" for d, f in frozen) + "]"
        )
        return PartialJoinStrategy(
            name=name, avoided=frozenset(), include_fks=True, kept_features=frozen
        )

    def _kept_map(self) -> dict[str, tuple[str, ...]]:
        return dict(self.kept_features)

    def joined_dimensions(self, schema: StarSchema) -> list[str]:
        kept = self._kept_map()
        unknown = set(kept) - set(schema.dimension_names)
        if unknown:
            raise SchemaError(
                f"partial-join strategy references unknown dimensions "
                f"{sorted(unknown)}"
            )
        return [
            name
            for name in schema.dimension_names
            if name not in kept or kept[name]
        ]

    def feature_names(self, schema: StarSchema) -> list[str]:
        kept = self._kept_map()
        unknown = set(kept) - set(schema.dimension_names)
        if unknown:
            raise SchemaError(
                f"partial-join strategy references unknown dimensions "
                f"{sorted(unknown)}"
            )
        for dim, features in kept.items():
            available = set(schema.foreign_features(dim))
            missing = set(features) - available
            if missing:
                raise SchemaError(
                    f"dimension {dim!r} has no foreign features "
                    f"{sorted(missing)}; available: {sorted(available)}"
                )
        features = list(schema.home_features)
        features += schema.usable_fk_columns()
        for name in self.joined_dimensions(schema):
            if name in kept:
                features += list(kept[name])
            else:
                features += schema.foreign_features(name)
        return features
