"""Monte Carlo simulation loops (Section 4 methodology).

The paper generates many training datasets from a fixed "true"
distribution and reports, per strategy, the **average test error** and
the **average net variance** (Domingos decomposition) of the models
fitted on them.  :func:`run_monte_carlo` implements one such loop for a
frozen scenario population: the dimension table, true distribution and
test block stay fixed across runs, while training and validation blocks
are redrawn each run.  :func:`sweep` repeats the loop along a parameter
axis, producing the data behind Figures 2-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.strategies import JoinStrategy
from repro.ml.bias_variance import BiasVarianceDecomposition, decompose
from repro.ml.metrics import zero_one_error
from repro.rng import ensure_rng, spawn_rngs


@dataclass
class MonteCarloResult:
    """Per-strategy averages over a Monte Carlo loop."""

    scenario: str
    n_runs: int
    test_error: dict[str, float] = field(default_factory=dict)
    net_variance: dict[str, float] = field(default_factory=dict)
    decompositions: dict[str, BiasVarianceDecomposition] = field(
        default_factory=dict
    )
    metadata: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [
            f"{name}: err={self.test_error[name]:.4f} "
            f"net_var={self.net_variance[name]:.4f}"
            for name in self.test_error
        ]
        return f"MonteCarlo[{self.scenario} x{self.n_runs}] " + "; ".join(parts)


def run_monte_carlo(
    scenario,
    model_factory: Callable[[], Any],
    strategies: list[JoinStrategy],
    n_runs: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> MonteCarloResult:
    """Run one Monte Carlo loop for a scenario.

    Parameters
    ----------
    scenario:
        Any object with ``population(seed)``, ``n_train`` (one of the
        Section 4 scenarios).
    model_factory:
        Builds a fresh tuner per (run, strategy); a tuner exposes
        ``fit(X_train, y_train, X_val, y_val)`` and ``predict``.
        Wrap plain estimators in :class:`~repro.ml.selection.GridSearch`
        (possibly with an empty grid).
    strategies:
        Feature strategies to compare (JoinAll / NoJoin / NoFK).
    n_runs:
        Monte Carlo repetitions (paper: 100).
    seed:
        Master seed; populations, test block and every run derive
        deterministically from it.

    Notes
    -----
    The test block is drawn once from the population and shared by all
    runs, which is what makes the across-run Domingos decomposition
    well-defined.  Test error is measured against the *observed* labels
    (including Bayes noise); net variance against the known optimal
    labels.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if not strategies:
        raise ValueError("need at least one strategy")
    root = ensure_rng(seed)
    population = scenario.population(root)
    n_eval = max(1, scenario.n_train // 4)
    test_block = population.draw(root, n_eval)
    run_rngs = spawn_rngs(root, n_runs)

    predictions: dict[str, np.ndarray] = {
        s.name: np.empty((n_runs, n_eval), dtype=np.int64) for s in strategies
    }
    for run, rng in enumerate(run_rngs):
        train_block = population.draw(rng, scenario.n_train)
        val_block = population.draw(rng, n_eval)
        dataset = population.dataset(train_block, val_block, test_block)
        for strategy in strategies:
            matrices = strategy.matrices(dataset)
            tuner = model_factory()
            tuner.fit(
                matrices.X_train,
                matrices.y_train,
                matrices.X_validation,
                matrices.y_validation,
            )
            predictions[strategy.name][run] = tuner.predict(matrices.X_test)

    result = MonteCarloResult(
        scenario=population.name,
        n_runs=n_runs,
        metadata=dict(population.metadata),
    )
    for strategy in strategies:
        preds = predictions[strategy.name]
        errors = [
            zero_one_error(test_block.y, preds[run]) for run in range(n_runs)
        ]
        decomposition = decompose(
            preds, test_block.y_optimal, y_true=test_block.y
        )
        result.test_error[strategy.name] = float(np.mean(errors))
        result.net_variance[strategy.name] = decomposition.net_variance
        result.decompositions[strategy.name] = decomposition
    return result


def sweep(
    scenario_factory: Callable[[Any], Any],
    values: list[Any],
    model_factory: Callable[[], Any],
    strategies: list[JoinStrategy],
    n_runs: int = 10,
    seed: int = 0,
) -> list[tuple[Any, MonteCarloResult]]:
    """Run a Monte Carlo loop for each value of a swept parameter.

    ``scenario_factory(value)`` builds the scenario for one x-axis
    point; each point gets an independent deterministic seed derived
    from ``seed``.  Returns ``(value, result)`` pairs in input order.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    results = []
    for offset, value in enumerate(values):
        scenario = scenario_factory(value)
        results.append(
            (
                value,
                run_monte_carlo(
                    scenario,
                    model_factory,
                    strategies,
                    n_runs=n_runs,
                    seed=seed + 1_000 * offset,
                ),
            )
        )
    return results
