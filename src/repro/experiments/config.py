"""Hyper-parameter grids and scale profiles.

The PAPER grids transcribe Section 3.2 verbatim.  Running them on a CI
budget is infeasible (the RBF-SVM grid alone is 30 SMO solves per
strategy per dataset), so two reduced profiles exist:

- ``SMOKE`` — single grid points, tiny networks; seconds per table.
  Used by unit tests.
- ``DEFAULT`` — pruned-but-faithful grids spanning the same axes;
  minutes for the full benchmark suite.  Used by the benchmarks.
- ``PAPER`` — the full Section 3.2 grids and the paper's Monte Carlo
  repetition count.

Select globally with the ``REPRO_SCALE`` environment variable
(``smoke`` / ``default`` / ``paper``) or pass a :class:`Scale` to the
harness explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Scale:
    """One resource profile for the whole experiment suite.

    Attributes
    ----------
    name:
        Profile identifier.
    n_fact:
        Fact-table rows for the real-world emulators.
    mc_runs:
        Monte Carlo repetitions for the simulation study (paper: 100).
    sim_n_train:
        Default simulation training-set size (paper: 1000).
    grids:
        Per-model hyper-parameter grids, keyed by model registry key.
    ann_hidden:
        MLP hidden layer sizes (paper: (256, 64)).
    ann_epochs:
        MLP training epochs.
    lr_nlambda:
        Lambda-path length for L1 logistic regression (paper: 100).
    svm_max_passes:
        SMO stall passes before declaring convergence.
    """

    name: str
    n_fact: int
    mc_runs: int
    sim_n_train: int
    grids: dict[str, dict[str, list[Any]]]
    ann_hidden: tuple[int, ...]
    ann_epochs: int
    lr_nlambda: int
    svm_max_passes: int = 3

    def grid_for(self, model_key: str) -> dict[str, list[Any]]:
        """The hyper-parameter grid of one model (empty if untuned)."""
        return self.grids.get(model_key, {})


_TREE_KEYS = ("dt_gini", "dt_entropy", "dt_gain_ratio")


def _tree_grids(minsplit: list[int], cp: list[float]) -> dict[str, dict]:
    return {key: {"minsplit": minsplit, "cp": cp} for key in _TREE_KEYS}


PAPER = Scale(
    name="paper",
    n_fact=100_000,
    mc_runs=100,
    sim_n_train=1000,
    grids={
        # Section 3.2: minsplit in {1,10,100,1000}, cp in {1e-4,1e-3,0.01,0.1,0}.
        **_tree_grids([1, 10, 100, 1000], [1e-4, 1e-3, 0.01, 0.1, 0.0]),
        # C in {0.1,1,10,100,1000}; gamma in {1e-4,...,10}.
        "svm_rbf": {
            "C": [0.1, 1.0, 10.0, 100.0, 1000.0],
            "gamma": [1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0],
        },
        "svm_quadratic": {
            "C": [0.1, 1.0, 10.0, 100.0, 1000.0],
            "gamma": [1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0],
        },
        "svm_linear": {"C": [0.1, 1.0, 10.0, 100.0, 1000.0]},
        # L2 in {1e-4,1e-3,1e-2}; learning rate in {1e-3,1e-2,1e-1}.
        "ann": {
            "l2": [1e-4, 1e-3, 1e-2],
            "learning_rate": [1e-3, 1e-2, 1e-1],
        },
    },
    ann_hidden=(256, 64),
    ann_epochs=30,
    lr_nlambda=100,
    svm_max_passes=5,
)

DEFAULT = Scale(
    name="default",
    n_fact=1600,
    mc_runs=8,
    sim_n_train=600,
    grids={
        **_tree_grids([10, 100], [1e-3, 0.01]),
        "svm_rbf": {"C": [1.0, 10.0], "gamma": [0.01, 0.1]},
        "svm_quadratic": {"C": [1.0, 10.0], "gamma": [0.01, 0.1]},
        "svm_linear": {"C": [1.0, 10.0]},
        "ann": {"l2": [1e-4, 1e-2], "learning_rate": [1e-2]},
    },
    ann_hidden=(32, 16),
    ann_epochs=12,
    lr_nlambda=30,
)

SMOKE = Scale(
    name="smoke",
    n_fact=400,
    mc_runs=3,
    sim_n_train=150,
    grids={
        **_tree_grids([10], [0.01]),
        "svm_rbf": {"C": [10.0], "gamma": [0.1]},
        "svm_quadratic": {"C": [10.0], "gamma": [0.1]},
        "svm_linear": {"C": [10.0]},
        "ann": {"l2": [1e-3], "learning_rate": [1e-2]},
    },
    ann_hidden=(8,),
    ann_epochs=5,
    lr_nlambda=8,
)

_PROFILES = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale profile by name or the ``REPRO_SCALE`` env var."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return _PROFILES[chosen.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; available: {sorted(_PROFILES)}"
        ) from None
