"""Section 5 analysis: why NoJoin works — foreign keys do the splitting.

The paper explains its results by inspecting fitted models: "we found
that in almost all cases, FK was used heavily for partitioning and
seldom was a feature from X_R" (Section 4.1), and Section 5 builds the
distance/partitioning argument on top.  This module operationalises
that inspection:

- :func:`fk_usage_report` fits a decision tree under a strategy and
  reports what fraction of its splits each feature class (home,
  foreign key, foreign feature) accounts for;
- :func:`fk_usage_across_datasets` aggregates the report over the
  emulated datasets, reproducing the qualitative evidence behind the
  paper's explanation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strategies import JoinStrategy, join_all_strategy
from repro.datasets.splits import SplitDataset
from repro.ml import DecisionTreeClassifier
from repro.ml.tree import tree_statistics


@dataclass
class FkUsageReport:
    """Split-usage breakdown of one fitted tree.

    Attributes
    ----------
    dataset, strategy:
        What was fitted.
    n_splits:
        Total internal nodes.
    splits_by_class:
        Split counts grouped into ``home`` (X_S), ``fk`` (foreign keys)
        and ``foreign`` (X_R) features.
    split_counts:
        Raw per-feature split counts.
    test_accuracy:
        Holdout accuracy of the inspected tree (context for the reader).
    """

    dataset: str
    strategy: str
    n_splits: int
    splits_by_class: dict[str, int] = field(default_factory=dict)
    split_counts: dict[str, int] = field(default_factory=dict)
    test_accuracy: float = 0.0

    def fraction(self, feature_class: str) -> float:
        """Fraction of all splits on the given feature class."""
        if not self.n_splits:
            return 0.0
        return self.splits_by_class.get(feature_class, 0) / self.n_splits

    def __str__(self) -> str:
        parts = ", ".join(
            f"{cls}={count} ({self.fraction(cls):.0%})"
            for cls, count in sorted(self.splits_by_class.items())
        )
        return (
            f"{self.dataset}/{self.strategy}: {self.n_splits} splits "
            f"[{parts}] test_acc={self.test_accuracy:.4f}"
        )


def _classify_features(dataset: SplitDataset) -> dict[str, str]:
    """Map every potential feature name to home / fk / foreign."""
    schema = dataset.schema
    classes: dict[str, str] = {}
    for name in schema.home_features:
        classes[name] = "home"
    for fk in schema.fk_columns:
        classes[fk] = "fk"
    for dim in schema.dimension_names:
        for feature in schema.foreign_features(dim):
            classes[feature] = "foreign"
    return classes


def fk_usage_report(
    dataset: SplitDataset,
    strategy: JoinStrategy | None = None,
    criterion: str = "gini",
    minsplit: int = 10,
    cp: float = 1e-3,
) -> FkUsageReport:
    """Fit a tree under ``strategy`` and break its splits down by feature class.

    Uses a fixed (not grid-searched) tree so the report reflects the
    splitting behaviour itself rather than hyper-parameter selection.
    """
    strategy = strategy or join_all_strategy()
    matrices = strategy.matrices(dataset)
    tree = DecisionTreeClassifier(
        criterion=criterion,
        minsplit=minsplit,
        cp=cp,
        unseen="majority",
        random_state=0,
    ).fit(matrices.X_train, matrices.y_train)
    stats = tree_statistics(tree)
    classes = _classify_features(dataset)
    by_class: dict[str, int] = {"home": 0, "fk": 0, "foreign": 0}
    for feature, count in stats.split_counts.items():
        by_class[classes.get(feature, "home")] += count
    return FkUsageReport(
        dataset=dataset.name,
        strategy=strategy.name,
        n_splits=stats.n_splits,
        splits_by_class=by_class,
        split_counts=dict(stats.split_counts),
        test_accuracy=tree.score(matrices.X_test, matrices.y_test),
    )


def fk_usage_across_datasets(
    datasets: dict[str, SplitDataset],
    strategy: JoinStrategy | None = None,
) -> list[FkUsageReport]:
    """Run :func:`fk_usage_report` over a collection of datasets."""
    return [
        fk_usage_report(dataset, strategy=strategy)
        for dataset in datasets.values()
    ]
