"""End-to-end tune/train/test pipeline for the real-data study.

One :func:`run_experiment` call reproduces one cell of Tables 2-6: it
materialises a strategy's feature matrices, tunes the model on the
validation split with the Section 3.2 grids, and reports train/
validation/test accuracy plus the end-to-end wall-clock time (the
quantity Figure 1 plots).

The :data:`MODEL_REGISTRY` holds all ten classifiers the paper
evaluates, each wrapped in the tuning procedure the paper used: grid
search for trees/SVMs/ANN, backward feature selection for Naive Bayes,
the glmnet-style lambda path for L1 logistic regression, and no tuning
for 1-NN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.strategies import JoinStrategy, StrategyMatrices
from repro.data import SourceSpec, source_accuracy
from repro.datasets.splits import SplitDataset
from repro.experiments.config import Scale, get_scale
from repro.ml import (
    CategoricalNB,
    DecisionTreeClassifier,
    GridSearch,
    KernelSVC,
    KNeighborsClassifier,
    MLPClassifier,
)
from repro.ml.encoding import CategoricalMatrix
from repro.ml.linear import L1LogisticRegression, LogisticRegressionPath
from repro.ml.selection import BackwardSelection
from repro.obs import registry as global_registry
from repro.obs import trace


class PathTuner:
    """Adapts :class:`LogisticRegressionPath` to the tuner protocol."""

    def __init__(self, nlambda: int, engine: str = "implicit"):
        self.path = LogisticRegressionPath(
            nlambda=nlambda, max_iter=10_000, tol=1e-3, engine=engine
        )

    def set_engine(self, engine: str) -> None:
        """Switch the path's execution engine (the ``--engine`` hook)."""
        self.path.engine = engine

    def fit(
        self,
        X_train: CategoricalMatrix,
        y_train: np.ndarray,
        X_val: CategoricalMatrix,
        y_val: np.ndarray,
    ) -> "PathTuner":
        self.best_model_ = self.path.fit_best(X_train, y_train, X_val, y_val)
        self.best_params_ = {"lam": self.best_model_.lam}
        return self

    def predict(self, X: CategoricalMatrix) -> np.ndarray:
        return self.best_model_.predict(X)

    def score(self, X: CategoricalMatrix, y: np.ndarray) -> float:
        return self.best_model_.score(X, y)


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry: how to build one paper model's tuner.

    Attributes
    ----------
    key:
        Registry key (``dt_gini``, ``svm_rbf``, ...).
    display:
        Name as it appears in the paper's table headers.
    family:
        Advisor model family (:data:`repro.core.advisor.FAMILY_THRESHOLDS`).
    make_tuner:
        Builds a fresh tuner for a scale profile.  A tuner exposes
        ``fit(X_train, y_train, X_val, y_val)``, ``predict`` and ``score``.
    """

    key: str
    display: str
    family: str
    make_tuner: Callable[[Scale], Any]


def _tree_spec(key: str, display: str, criterion: str) -> ModelSpec:
    def make(scale: Scale):
        return GridSearch(
            DecisionTreeClassifier(
                criterion=criterion, unseen="majority", random_state=0
            ),
            grid=scale.grid_for(key),
        )

    return ModelSpec(key=key, display=display, family="decision_tree", make_tuner=make)


def _svm_spec(key: str, display: str, kernel: str, family: str) -> ModelSpec:
    def make(scale: Scale):
        return GridSearch(
            KernelSVC(
                kernel=kernel,
                degree=2,
                max_passes=scale.svm_max_passes,
                random_state=0,
            ),
            grid=scale.grid_for(key),
        )

    return ModelSpec(key=key, display=display, family=family, make_tuner=make)


def _ann_spec() -> ModelSpec:
    def make(scale: Scale):
        return GridSearch(
            MLPClassifier(
                hidden_sizes=scale.ann_hidden,
                epochs=scale.ann_epochs,
                random_state=0,
            ),
            grid=scale.grid_for("ann"),
        )

    return ModelSpec(key="ann", display="ANN", family="ann", make_tuner=make)


def _nb_spec() -> ModelSpec:
    def make(scale: Scale):
        return BackwardSelection(CategoricalNB(alpha=1.0))

    return ModelSpec(
        key="nb_bfs", display="Naive Bayes (BFS)", family="linear", make_tuner=make
    )


def _lr_spec() -> ModelSpec:
    def make(scale: Scale):
        return PathTuner(nlambda=scale.lr_nlambda)

    return ModelSpec(
        key="lr_l1", display="Logistic Regression (L1)", family="linear",
        make_tuner=make,
    )


def _nn1_spec() -> ModelSpec:
    def make(scale: Scale):
        return GridSearch(KNeighborsClassifier(n_neighbors=1), grid={})

    return ModelSpec(key="nn1", display="1-NN", family="1nn", make_tuner=make)


#: All ten classifiers of the study, keyed as used by the benchmarks.
MODEL_REGISTRY: dict[str, ModelSpec] = {
    spec.key: spec
    for spec in (
        _tree_spec("dt_gini", "Decision Tree (Gini)", "gini"),
        _tree_spec("dt_entropy", "Decision Tree (Information Gain)", "entropy"),
        _tree_spec("dt_gain_ratio", "Decision Tree (Gain Ratio)", "gain_ratio"),
        _nn1_spec(),
        _svm_spec("svm_linear", "SVM (Linear)", "linear", "linear"),
        _svm_spec("svm_quadratic", "SVM (Polynomial)", "poly", "rbf_svm"),
        _svm_spec("svm_rbf", "SVM (RBF)", "rbf", "rbf_svm"),
        _ann_spec(),
        _nb_spec(),
        _lr_spec(),
    )
}


@dataclass
class RunResult:
    """Outcome of one (dataset, model, strategy) experiment cell."""

    dataset: str
    model: str
    strategy: str
    test_accuracy: float
    train_accuracy: float
    validation_accuracy: float
    seconds: float
    n_features: int
    best_params: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.dataset}/{self.model}/{self.strategy}: "
            f"test={self.test_accuracy:.4f} train={self.train_accuracy:.4f} "
            f"({self.seconds:.2f}s, {self.n_features} features)"
        )


@dataclass
class FittedPipeline:
    """A tuned, trained pipeline kept alive after its experiment cell.

    Historically the runner fitted a tuner, scored it and threw it away;
    this container is what the serving layer needs instead: the fitted
    predictor together with the strategy and feature list that define how
    to assemble its inputs.  Build one with :func:`fit_pipeline` and hand
    it to :func:`repro.serving.artifact_from_pipeline` to export it.
    """

    dataset_name: str
    model_key: str
    spec: ModelSpec
    strategy: JoinStrategy
    tuner: Any
    matrices: StrategyMatrices
    fit_seconds: float

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature columns the fitted tuner consumes, in matrix order."""
        return self.matrices.feature_names

    def predict(self, X: CategoricalMatrix) -> np.ndarray:
        """Predict integer class codes with the tuned model."""
        return self.tuner.predict(X)

    def result(self) -> RunResult:
        """Score the pipeline into the :class:`RunResult` table row."""
        with trace("score", split="test"):
            test_accuracy = self.tuner.score(
                self.matrices.X_test, self.matrices.y_test
            )
        with trace("score", split="train"):
            train_accuracy = self.tuner.score(
                self.matrices.X_train, self.matrices.y_train
            )
        return RunResult(
            dataset=self.dataset_name,
            model=self.spec.display,
            strategy=self.strategy.name,
            test_accuracy=test_accuracy,
            train_accuracy=train_accuracy,
            validation_accuracy=float(
                getattr(self.tuner, "best_validation_accuracy_", np.nan)
            ),
            seconds=self.fit_seconds,
            n_features=self.matrices.X_train.n_features,
            best_params=dict(getattr(self.tuner, "best_params_", {})),
        )


def fit_pipeline(
    dataset: SplitDataset,
    model_key: str,
    strategy: JoinStrategy,
    scale: Scale | None = None,
    matrices: StrategyMatrices | None = None,
    engine: str = "implicit",
) -> FittedPipeline:
    """Materialise, tune and train one pipeline, keeping the fitted model.

    Parameters
    ----------
    dataset:
        A pre-split star-schema dataset.
    model_key:
        Key into :data:`MODEL_REGISTRY`.
    strategy:
        Feature-set strategy (JoinAll / NoJoin / NoFK / NoRi).
    scale:
        Resource profile; ``None`` resolves via ``REPRO_SCALE``.
    matrices:
        Pre-materialised matrices (to share the join across models);
        built from the strategy when omitted.
    engine:
        Execution engine for tuners that expose one (``set_engine``);
        currently the L1 logistic path.  The tuned path trains on
        already-gathered matrices, so ``"factorized"`` degenerates to
        the implicit engine's exact arithmetic here — the factorized
        training win needs the streaming path (``SourceSpec(engine=...)``).
    """
    try:
        spec = MODEL_REGISTRY[model_key]
    except KeyError:
        raise ValueError(
            f"unknown model {model_key!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    scale = scale or get_scale()
    started = time.perf_counter()
    if matrices is None:
        # Materialisation is the paper's join-or-avoid quantity: the
        # KFK join (when the strategy keeps it) plus feature encoding.
        with trace("join", strategy=strategy.name):
            matrices = strategy.matrices(dataset)
    tuner = spec.make_tuner(scale)
    if engine != "implicit":
        from repro.ml.sparse import check_engine

        check_engine(engine)
        if not hasattr(tuner, "set_engine"):
            raise ValueError(
                f"model {model_key!r} does not take an execution engine; "
                f"engine= is supported for 'lr_l1'"
            )
        tuner.set_engine(engine)
    with trace("tune", model=model_key):
        tuner.fit(
            matrices.X_train,
            matrices.y_train,
            matrices.X_validation,
            matrices.y_validation,
        )
    elapsed = time.perf_counter() - started
    return FittedPipeline(
        dataset_name=dataset.name,
        model_key=model_key,
        spec=spec,
        strategy=strategy,
        tuner=tuner,
        matrices=matrices,
        fit_seconds=elapsed,
    )


#: Models with an out-of-core training path (see :mod:`repro.streaming`).
STREAMABLE_MODELS = (
    "lr_l1",
    "ann",
    "nb",
    "dt_gini",
    "dt_entropy",
    "dt_gain_ratio",
)

#: Display names for streamable keys without a same-named registry entry
#: (streaming NB fits a single smoothing configuration, not the
#: backward-feature-selection tuner behind ``nb_bfs``).
_STREAM_DISPLAYS = {"nb": "Naive Bayes"}


def streaming_model_display(model_key: str) -> str:
    """Table-header name of a streamable model configuration."""
    if model_key in _STREAM_DISPLAYS:
        return _STREAM_DISPLAYS[model_key]
    return MODEL_REGISTRY[model_key].display


#: Streamable models whose kernels run on factorized shards (the trees
#: consume raw gathered codes, the MLP's hidden layers are dense —
#: their streams must stay gathered).
FACTORIZABLE_MODELS = ("lr_l1", "nb")


def make_streaming_model(
    model_key: str,
    scale: Scale | None = None,
    seed: int = 0,
    engine: str = "implicit",
):
    """Build one streaming-capable model at a scale profile.

    The streaming path fits a single configuration rather than a tuning
    grid — hyper-parameter search over larger-than-RAM data would
    multiply full passes by the grid size.  The MLP follows the scale
    profile's topology and epoch budget; the logistic model uses the
    paper's ``maxit=10000`` cap with early stopping at ``tol``; Naive
    Bayes streams its counts and the trees their split histograms
    exactly, so no configuration differs from the in-memory one.

    ``engine="factorized"`` is accepted for :data:`FACTORIZABLE_MODELS`
    only; Naive Bayes dispatches on the shard type (no hyper-parameter),
    the logistic model and MLP take the engine directly.
    """
    scale = scale or get_scale()
    if engine == "factorized" and model_key not in FACTORIZABLE_MODELS:
        raise ValueError(
            f"model {model_key!r} cannot train on factorized shards; "
            f"factorizable models: {list(FACTORIZABLE_MODELS)}"
        )
    if model_key == "lr_l1":
        return L1LogisticRegression(
            lam=1e-3, max_iter=10_000, tol=1e-5, engine=engine
        )
    if model_key == "ann":
        return MLPClassifier(
            hidden_sizes=scale.ann_hidden,
            epochs=scale.ann_epochs,
            random_state=seed,
            engine=engine,
        )
    if model_key == "nb":
        return CategoricalNB(alpha=1.0)
    if model_key in ("dt_gini", "dt_entropy", "dt_gain_ratio"):
        criterion = model_key.removeprefix("dt_")
        return DecisionTreeClassifier(
            criterion=criterion, unseen="majority", random_state=seed
        )
    raise ValueError(
        f"model {model_key!r} has no streaming path; streamable models: "
        f"{list(STREAMABLE_MODELS)}"
    )


def split_accuracy(model, source) -> float:
    """Accuracy of a fitted model over one split's :class:`FeatureSource`.

    The single scoring helper shared by every experiment path (it *is*
    :func:`repro.data.source_accuracy`): hits accumulate shard by
    shard, so scoring an out-of-core split has the same bounded
    footprint as training on it, and scoring an in-memory split is the
    plain full-matrix accuracy.
    """
    return source_accuracy(model, source)


def _run_source_experiment(
    dataset: SplitDataset,
    model_key: str,
    strategy: JoinStrategy,
    spec: SourceSpec,
    scale: Scale | None,
    seed: int,
    mode: str = "exact",
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
    parallel_workers: int = 0,
) -> RunResult:
    """One single-configuration cell over :class:`SourceSpec`-built sources."""
    from repro.streaming import StreamingTrainer

    scale = scale or get_scale()
    model = make_streaming_model(model_key, scale, seed, engine=spec.engine)
    started = time.perf_counter()
    # Source construction resolves the strategy's join plan per split
    # (sharded sources then encode lazily, shard by shard, inside fit
    # and score — those show up as merged ``encode.shard`` spans).
    with trace("join", strategy=strategy.name):
        sources = spec.split_sources(
            dataset, strategy, registry=global_registry()
        )
    try:
        trainer = StreamingTrainer(
            model,
            seed=seed,
            mode=mode,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            parallel_workers=parallel_workers,
        )
        trainer.fit(sources["train"])

        def scored(split: str) -> float:
            with trace("score", split=split):
                return split_accuracy(model, sources[split])

        result = RunResult(
            dataset=dataset.name,
            model=streaming_model_display(model_key),
            strategy=strategy.name,
            test_accuracy=scored("test"),
            train_accuracy=scored("train"),
            validation_accuracy=scored("validation"),
            seconds=0.0,
            n_features=sources["train"].n_features,
            best_params={
                **spec.describe(),
                "shard_rows": sources["train"].shard_rows,
                "n_shards": sources["train"].n_shards,
            },
        )
    finally:
        for source in sources.values():
            source.close()
    result.seconds = time.perf_counter() - started
    return result


def run_experiment(
    dataset: SplitDataset,
    model_key: str,
    strategy: JoinStrategy,
    scale: Scale | None = None,
    matrices: StrategyMatrices | None = None,
    source: SourceSpec | None = None,
    seed: int = 0,
    mode: str = "exact",
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
    parallel_workers: int = 0,
    engine: str = "implicit",
) -> RunResult:
    """Run one experiment cell end to end.

    With ``source=None`` (the default) this is the paper's tuned
    harness: a thin wrapper over :func:`fit_pipeline` that immediately
    scores the pipeline and discards it.  The reported time covers
    feature materialisation, the full grid search, refit and test-set
    scoring — the paper's Figure 1 quantity.

    With a :class:`repro.data.SourceSpec`, the cell instead fits the
    single :func:`make_streaming_model` configuration over the spec's
    per-split :class:`~repro.data.FeatureSource`\\ s — in memory for
    ``SourceSpec()``, out of core for a sharded spec, with optional
    prefetch/spill-cache decorators — and scores every split through
    the shared :func:`split_accuracy`.  This subsumes the
    ``run_inmemory_experiment`` / ``run_streaming_experiment`` pair of
    earlier revisions: a sharded spec with a single shard is
    bit-identical to the in-memory spec on the same model.

    ``seed`` feeds the source path's model and shard-order RNGs only.
    The tuned path pins its tuners to the paper's fixed
    ``random_state=0`` grids and ignores ``seed``; vary the dataset
    generation seed to resample a tuned cell.

    ``mode``, ``checkpoint``, ``checkpoint_every``, ``resume`` and
    ``parallel_workers`` are forwarded to the source path's
    :class:`~repro.streaming.StreamingTrainer` (checkpoint/resume
    semantics are documented there); the tuned path rejects them via
    the trainer's own validation when combined incorrectly and ignores
    them otherwise.

    ``engine`` selects the tuned path's execution engine (see
    :func:`fit_pipeline`); the source path takes its engine from the
    spec (``SourceSpec(engine=...)``), so passing both here raises.
    """
    if source is not None:
        if matrices is not None:
            raise ValueError(
                "matrices= belongs to the tuned path; a SourceSpec builds "
                "its own per-split sources — pass one or the other"
            )
        if engine != "implicit" and engine != source.engine:
            raise ValueError(
                "the source path takes its engine from the SourceSpec; "
                f"got engine={engine!r} with SourceSpec(engine="
                f"{source.engine!r})"
            )
        return _run_source_experiment(
            dataset, model_key, strategy, source, scale, seed,
            mode=mode, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, resume=resume,
            parallel_workers=parallel_workers,
        )
    started = time.perf_counter()
    pipeline = fit_pipeline(
        dataset, model_key, strategy, scale=scale, matrices=matrices,
        engine=engine,
    )
    result = pipeline.result()
    result.seconds = time.perf_counter() - started
    return result
