"""Experiment harness reproducing every table and figure of the paper.

- :mod:`repro.experiments.config` — the Section 3.2 hyper-parameter
  grids and the SMOKE/DEFAULT/PAPER scale profiles.
- :mod:`repro.experiments.runner` — the model registry (all ten
  classifiers) and the end-to-end tune/train/test pipeline used for
  Tables 2-6 and Figure 1.
- :mod:`repro.experiments.simulation` — Monte Carlo loops over the
  Section 4 scenarios: average test error and Domingos net variance per
  swept parameter (Figures 2-9 and 11).
- :mod:`repro.experiments.reporting` — renders results as the paper's
  tables and figure series.
"""

from repro.experiments.analysis import (
    FkUsageReport,
    fk_usage_across_datasets,
    fk_usage_report,
)
from repro.experiments.config import (
    DEFAULT,
    PAPER,
    SMOKE,
    Scale,
    get_scale,
)
from repro.experiments.fk_experiments import (
    run_compression_experiment,
    run_smoothing_experiment,
)
from repro.experiments.reporting import AccuracyTable, FigureSeries
from repro.experiments.runner import (
    MODEL_REGISTRY,
    STREAMABLE_MODELS,
    FittedPipeline,
    ModelSpec,
    RunResult,
    fit_pipeline,
    make_streaming_model,
    run_experiment,
    split_accuracy,
    streaming_model_display,
)
from repro.experiments.simulation import MonteCarloResult, run_monte_carlo, sweep

__all__ = [
    "AccuracyTable",
    "DEFAULT",
    "FigureSeries",
    "FittedPipeline",
    "FkUsageReport",
    "MODEL_REGISTRY",
    "ModelSpec",
    "MonteCarloResult",
    "PAPER",
    "RunResult",
    "SMOKE",
    "STREAMABLE_MODELS",
    "Scale",
    "fit_pipeline",
    "fk_usage_across_datasets",
    "fk_usage_report",
    "get_scale",
    "make_streaming_model",
    "run_compression_experiment",
    "run_experiment",
    "run_monte_carlo",
    "run_smoothing_experiment",
    "split_accuracy",
    "streaming_model_display",
    "sweep",
]
