"""Rendering experiment results as the paper's tables and figure series.

:class:`AccuracyTable` reproduces the layout of Tables 2-6: datasets as
rows, (model, strategy) pairs as columns, with the paper's convention of
flagging cells where NoJoin trails JoinAll by at least one accuracy
point.  :class:`FigureSeries` holds one figure panel's data — an x axis
plus one y series per strategy — and renders it as an aligned text
block (and CSV for downstream plotting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: The paper bold-faces cells where NoJoin is at least this much below
#: JoinAll (1 accuracy point).
SIGNIFICANT_DROP = 0.01


@dataclass
class AccuracyTable:
    """A Tables-2-to-6-style accuracy grid.

    Values are keyed by ``(dataset, model, strategy)``; columns group by
    model first, strategy second, mirroring the paper's layout.
    """

    caption: str
    datasets: list[str] = field(default_factory=list)
    models: list[str] = field(default_factory=list)
    strategies: list[str] = field(default_factory=list)
    values: dict[tuple[str, str, str], float] = field(default_factory=dict)

    def record(
        self, dataset: str, model: str, strategy: str, accuracy: float
    ) -> None:
        """Add one cell, registering new row/column labels in order."""
        if dataset not in self.datasets:
            self.datasets.append(dataset)
        if model not in self.models:
            self.models.append(model)
        if strategy not in self.strategies:
            self.strategies.append(strategy)
        self.values[(dataset, model, strategy)] = float(accuracy)

    def get(self, dataset: str, model: str, strategy: str) -> float | None:
        """Look up one cell (None when the cell was never recorded)."""
        return self.values.get((dataset, model, strategy))

    def flagged_cells(self) -> list[tuple[str, str]]:
        """(dataset, model) pairs where NoJoin trails JoinAll by >= 1 point.

        This is the paper's bold-face criterion; on most datasets and
        models the list should be empty or nearly so.
        """
        flagged = []
        for dataset in self.datasets:
            for model in self.models:
                join_all = self.get(dataset, model, "JoinAll")
                no_join = self.get(dataset, model, "NoJoin")
                if join_all is None or no_join is None:
                    continue
                if no_join <= join_all - SIGNIFICANT_DROP:
                    flagged.append((dataset, model))
        return flagged

    def render(self) -> str:
        """Aligned text rendering; flagged cells carry a ``*`` suffix."""
        flagged = set(self.flagged_cells())
        header_cells = ["dataset"]
        for model in self.models:
            for strategy in self.strategies:
                if (self.datasets and all(
                    self.get(d, model, strategy) is None for d in self.datasets
                )):
                    continue
                header_cells.append(f"{model}/{strategy}")
        rows = [header_cells]
        for dataset in self.datasets:
            row = [dataset]
            for model in self.models:
                for strategy in self.strategies:
                    if all(
                        self.get(d, model, strategy) is None for d in self.datasets
                    ):
                        continue
                    value = self.get(dataset, model, strategy)
                    if value is None:
                        row.append("-")
                        continue
                    mark = (
                        "*"
                        if strategy == "NoJoin" and (dataset, model) in flagged
                        else ""
                    )
                    row.append(f"{value:.4f}{mark}")
            rows.append(row)
        widths = [
            max(len(row[j]) for row in rows) for j in range(len(rows[0]))
        ]
        lines = [self.caption]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
            )
        return "\n".join(lines)


@dataclass
class FigureSeries:
    """One figure panel: an x axis and one y series per strategy."""

    title: str
    x_label: str
    x: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_point(self, x_value, values: dict[str, float]) -> None:
        """Append one x-axis point with its per-series y values."""
        self.x.append(x_value)
        for name, value in values.items():
            self.series.setdefault(name, []).append(float(value))
        for name, ys in self.series.items():
            if len(ys) < len(self.x):
                raise ValueError(
                    f"series {name!r} missing a value at x={x_value!r}"
                )

    def max_gap(self, a: str, b: str) -> float:
        """Largest pointwise |a - b| gap between two series."""
        ya, yb = np.asarray(self.series[a]), np.asarray(self.series[b])
        if ya.shape != yb.shape:
            raise ValueError("series lengths differ")
        return float(np.max(np.abs(ya - yb))) if ya.size else 0.0

    def render(self) -> str:
        """Aligned text rendering of the panel data."""
        names = list(self.series)
        rows = [[self.x_label, *names]]
        for i, x_value in enumerate(self.x):
            rows.append(
                [str(x_value), *(f"{self.series[n][i]:.4f}" for n in names)]
            )
        widths = [max(len(row[j]) for row in rows) for j in range(len(rows[0]))]
        lines = [self.title]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (x column plus one column per series)."""
        names = list(self.series)
        lines = [",".join([self.x_label, *names])]
        for i, x_value in enumerate(self.x):
            lines.append(
                ",".join([str(x_value), *(f"{self.series[n][i]:.6f}" for n in names)])
            )
        return "\n".join(lines)
