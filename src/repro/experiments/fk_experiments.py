"""Section 6 experiments: FK domain compression and FK smoothing.

Two experiment drivers used by the Figure 10 and Figure 11 benchmarks:

- :func:`run_compression_experiment` — compress every usable foreign-key
  feature of a real dataset under NoJoin with both compressors (random
  hashing vs sort-based) across a range of budgets, training a gini
  decision tree at each point (Figure 10's setup).
- :func:`run_smoothing_experiment` — on the OneXr scenario, hold out a
  fraction ``gamma`` of the FK domain from training, smooth the unseen
  test levels with either random reassignment or the X_R-based
  minimum-l0 method, and compare JoinAll/NoJoin/NoFK test errors
  (Figure 11's setup).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.compression import RandomHashingCompressor, SortBasedCompressor
from repro.core.smoothing import ForeignFeatureSmoother, RandomSmoother
from repro.core.strategies import (
    join_all_strategy,
    no_fk_strategy,
    no_join_strategy,
)
from repro.datasets.splits import SplitDataset
from repro.datasets.synthetic import OneXrScenario
from repro.experiments.reporting import FigureSeries
from repro.ml import DecisionTreeClassifier, GridSearch
from repro.ml.encoding import CategoricalMatrix
from repro.ml.metrics import zero_one_error
from repro.rng import ensure_rng, spawn_rngs


def _default_tree_factory() -> GridSearch:
    return GridSearch(
        DecisionTreeClassifier(unseen="majority", random_state=0),
        grid={"minsplit": [10, 100], "cp": [1e-3, 0.01]},
    )


def _compress_splits(
    compressor_factory: Callable[[], object],
    matrices,
    fk_features: list[str],
):
    """Fit one compressor per FK feature on train, transform all splits."""
    X_train, X_val, X_test = (
        matrices.X_train,
        matrices.X_validation,
        matrices.X_test,
    )
    for feature in fk_features:
        j = X_train.index_of(feature)
        compressor = compressor_factory()
        compressor.fit(
            X_train.column(j), matrices.y_train, n_levels=X_train.n_levels[j]
        )
        X_train = compressor.compress_feature(X_train, feature)
        renamed = X_train.names[j]
        X_val = X_val.replace_column(
            j, compressor.transform(X_val.column(j)), compressor.n_groups_,
            name=renamed,
        )
        X_test = X_test.replace_column(
            j, compressor.transform(X_test.column(j)), compressor.n_groups_,
            name=renamed,
        )
    return X_train, X_val, X_test


def run_compression_experiment(
    dataset: SplitDataset,
    budgets: list[int],
    seed: int = 0,
    model_factory: Callable[[], object] | None = None,
) -> FigureSeries:
    """Figure 10: NoJoin accuracy vs FK-domain budget for both compressors.

    Every usable FK feature is compressed to the same budget ``l``; the
    model is the paper's gini decision tree tuned on the validation
    split.  Returns a series with ``Random`` and ``Sort-based`` columns.
    """
    if not budgets:
        raise ValueError("need at least one budget")
    model_factory = model_factory or _default_tree_factory
    strategy = no_join_strategy()
    matrices = strategy.matrices(dataset)
    fk_features = [
        name
        for name in dataset.schema.usable_fk_columns()
        if name in matrices.X_train.names
    ]
    if not fk_features:
        raise ValueError(f"dataset {dataset.name!r} has no usable FK features")
    figure = FigureSeries(
        title=f"Figure 10 ({dataset.name}): FK domain compression, NoJoin",
        x_label="budget",
    )
    for offset, budget in enumerate(budgets):
        values = {}
        for label, factory in (
            ("Random", lambda: RandomHashingCompressor(budget, seed=seed + offset)),
            ("Sort-based", lambda: SortBasedCompressor(budget, seed=seed + offset)),
        ):
            X_train, X_val, X_test = _compress_splits(factory, matrices, fk_features)
            tuner = model_factory()
            tuner.fit(X_train, matrices.y_train, X_val, matrices.y_validation)
            values[label] = tuner.score(X_test, matrices.y_test)
        figure.add_point(budget, values)
    return figure


_SMOOTHER_METHODS = ("random", "xr")


def run_smoothing_experiment(
    scenario: OneXrScenario,
    gammas: list[float],
    n_runs: int = 5,
    seed: int = 0,
    model_factory: Callable[[], object] | None = None,
) -> dict[str, FigureSeries]:
    """Figure 11: test error vs unseen-FK fraction gamma, per smoother.

    For each gamma, training/validation rows draw foreign keys from a
    ``(1 - gamma)`` fraction of the domain while test rows use the full
    domain; unseen test FK levels are then reassigned by each smoothing
    method before prediction.  Strategies compared: JoinAll, NoJoin and
    NoFK (the latter needs no smoothing and lower-bounds the error).

    Returns ``{"random": series, "xr": series}``, each series holding
    one column per strategy.
    """
    if not gammas:
        raise ValueError("need at least one gamma")
    for gamma in gammas:
        if not 0.0 <= gamma < 1.0:
            raise ValueError(f"gamma must lie in [0, 1), got {gamma}")
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    model_factory = model_factory or _default_tree_factory
    strategies = [join_all_strategy(), no_join_strategy(), no_fk_strategy()]
    figures = {
        method: FigureSeries(
            title=f"Figure 11 ({method} smoothing): OneXr test error vs gamma",
            x_label="gamma",
        )
        for method in _SMOOTHER_METHODS
    }
    root = ensure_rng(seed)
    population = scenario.population(root)
    n_eval = max(1, scenario.n_train // 4)
    test_block = population.draw(root, n_eval)
    # The population's dimension rows sit in RID order, so stacking its
    # feature columns yields the (n_levels, d_R) matrix the smoother needs.
    xr_codes = np.stack(
        [column.codes for column in population.dim_columns], axis=1
    )

    for gamma in gammas:
        n_seen = max(1, int(round((1.0 - gamma) * scenario.n_r)))
        allowed = np.arange(n_seen)
        errors: dict[str, dict[str, list[float]]] = {
            method: {s.name: [] for s in strategies} for method in _SMOOTHER_METHODS
        }
        for rng in spawn_rngs(root, n_runs):
            train_block = population.draw(rng, scenario.n_train, fk_subset=allowed)
            val_block = population.draw(rng, n_eval, fk_subset=allowed)
            dataset = population.dataset(train_block, val_block, test_block)
            smoothers = {
                "random": RandomSmoother(seed=rng).fit(
                    train_block.fk_codes, n_levels=scenario.n_r
                ),
                "xr": ForeignFeatureSmoother(xr_codes, seed=rng).fit(
                    train_block.fk_codes, n_levels=scenario.n_r
                ),
            }
            for strategy in strategies:
                matrices = strategy.matrices(dataset)
                has_fk = "FK" in matrices.X_train.names
                for method, smoother in smoothers.items():
                    X_test = (
                        smoother.smooth_feature(matrices.X_test, "FK")
                        if has_fk
                        else matrices.X_test
                    )
                    X_val = (
                        smoother.smooth_feature(matrices.X_validation, "FK")
                        if has_fk
                        else matrices.X_validation
                    )
                    tuner = model_factory()
                    tuner.fit(
                        matrices.X_train,
                        matrices.y_train,
                        X_val,
                        matrices.y_validation,
                    )
                    errors[method][strategy.name].append(
                        zero_one_error(matrices.y_test, tuner.predict(X_test))
                    )
        for method in _SMOOTHER_METHODS:
            figures[method].add_point(
                gamma,
                {
                    name: float(np.mean(errs))
                    for name, errs in errors[method].items()
                },
            )
    return figures


