"""repro — reproduction of Shah, Kumar & Zhu (VLDB 2017).

"Are Key-Foreign Key Joins Safe to Avoid when Learning High-Capacity
Classifiers?" studies whether key-foreign-key (KFK) joins that bring in
foreign features can be skipped ("avoiding joins safely") when training
decision trees, kernel SVMs, ANNs and other high-capacity classifiers.

The package is organised in nine layers:

- :mod:`repro.relational` — an in-memory relational substrate: categorical
  columns with closed domains, tables, star schemas with KFK constraints,
  equi-joins, and functional-dependency auditing.
- :mod:`repro.ml` — a from-scratch ML substrate (no sklearn): CART decision
  trees with three split criteria, kernel SVMs trained with SMO, an MLP
  with Adam, categorical Naive Bayes, L1 logistic regression, k-NN,
  validation-set grid search, and the Domingos bias-variance decomposition.
- :mod:`repro.datasets` — generators for the paper's simulation scenarios
  (OneXr, XSXR, RepOneXr; uniform/Zipfian/needle-and-thread foreign-key
  skew) and emulators of its seven real-world star-schema datasets.
- :mod:`repro.core` — the paper's contribution: JoinAll/NoJoin/NoFK
  feature-set strategies, the tuple-ratio join-safety advisor, foreign-key
  domain compression, and unseen-foreign-key smoothing.
- :mod:`repro.experiments` — the experiment harness reproducing every
  table and figure in the paper's evaluation.
- :mod:`repro.data` — the unified shard-oriented data layer: the
  :class:`~repro.data.FeatureSource` protocol every trainer and scorer
  consumes, the shared :class:`~repro.data.ShardEncoder` encode path,
  and the prefetch / disk-spill-cache decorators.
- :mod:`repro.streaming` — out-of-core sharded training: bounded fact
  shards from splits/populations/chunked CSVs, per-shard strategy
  matrices, and a deterministic :class:`~repro.streaming.StreamingTrainer`
  whose results are numerically equivalent to in-memory fits.
- :mod:`repro.serving` — online inference: versioned model artifacts,
  a feature service with cached dimension indexes, micro-batched
  prediction, and the in-process :class:`~repro.serving.PredictionServer`.
- :mod:`repro.analysis` — static enforcement of the invariants the rest
  of the package promises dynamically: a rule-plugin AST lint
  (``repro lint``) covering telemetry hygiene, seeded determinism,
  lock discipline, exception hygiene, and FeatureSource conformance.
"""

from repro.errors import (
    NotFittedError,
    ReferentialIntegrityError,
    ReproError,
    SchemaError,
    UnseenCategoryError,
)
from repro.rng import ensure_rng

__version__ = "1.8.0"

#: Serving-layer names re-exported lazily so ``import repro`` stays light
#: (resolving any of them pulls in numpy and the full model substrate).
_SERVING_EXPORTS = (
    "FeatureService",
    "MicroBatcher",
    "ModelArtifact",
    "PredictionServer",
    "artifact_from_pipeline",
    "load_artifact",
    "save_artifact",
    "schema_fingerprint",
)

__all__ = [
    "NotFittedError",
    "ReferentialIntegrityError",
    "ReproError",
    "SchemaError",
    "UnseenCategoryError",
    "ensure_rng",
    "__version__",
    *_SERVING_EXPORTS,
]


def __getattr__(name: str):
    """Resolve serving re-exports on first access (PEP 562)."""
    if name in _SERVING_EXPORTS:
        import repro.serving

        return getattr(repro.serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
