"""Command-line front end for the static-analysis suite.

Two equivalent entry points share this module: ``repro lint`` (the
subcommand registered in :mod:`repro.cli`) and ``python -m
repro.analysis``.  Exit codes follow the lint convention the telemetry
hygiene tool established: 0 clean, 1 findings, 2 usage error (unknown
rule id, missing target path).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import run_analysis
from repro.analysis.rules import ALL_RULES, DEFAULT_CONFIG, get_rules
from repro.errors import StaticAnalysisError
from repro.obs import emit

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]

#: Scanned when no paths are given (missing ones silently skipped, so
#: the command works from the repo root of a source checkout).
DEFAULT_TARGETS = ("src", "benchmarks", "tools")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks tools)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable); default is every rule",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and descriptions, then exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static-analysis suite for the repro codebase.",
    )
    add_lint_arguments(parser)
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            emit(f"{rule.id:20s} {rule.description}")
        return 0
    rules = get_rules(args.rules)
    paths = list(args.paths)
    if not paths:
        paths = [target for target in DEFAULT_TARGETS if Path(target).exists()]
        if not paths:
            raise StaticAnalysisError(
                "no lint targets: none of src/, benchmarks/, tools/ exist"
                " here and no paths were given"
            )
    report = run_analysis(
        paths,
        rules,
        config=DEFAULT_CONFIG,
        known_rule_ids=[rule.id for rule in ALL_RULES],
    )
    if args.format == "json":
        emit(json.dumps(report.as_dict(), indent=2))
    else:
        for line in report.render_text():
            emit(line, error=True)
        if report.ok:
            emit(
                f"repro lint: {report.files} file(s) clean"
                f" ({len(report.rule_ids)} rule(s))"
            )
        else:
            emit(f"{len(report.findings)} finding(s)", error=True)
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    try:
        return run_lint(args)
    except StaticAnalysisError as error:
        emit(f"repro lint: {error}", error=True)
        return 2


if __name__ == "__main__":
    sys.exit(main())
