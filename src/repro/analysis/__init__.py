"""Static analysis for the repro codebase: the second enforcement layer.

The package's guarantees — bit-identical reproduction, seeded
determinism through kill/resume, race-free concurrent serving — are
enforced dynamically by the test suite, which must happen to exercise
the offending line.  :mod:`repro.analysis` enforces the same invariants
*statically*: a rule-plugin AST lint that rejects violating code before
it ever runs.

Nine rules ship (see ``repro lint --list-rules``): the three telemetry
rules migrated from ``tools/check_telemetry_hygiene.py`` (``wall-clock``,
``bare-print``, ``raw-sleep``) plus ``unseeded-random`` (all randomness
flows through :mod:`repro.rng`), ``lock-discipline`` (writes to
lock-protected attributes stay under the lock), ``exception-hygiene``
(no bare/swallowing handlers; raises are typed), ``process-discipline``
(worker-process lifecycle stays inside :mod:`repro.parallel`),
``feature-source`` (protocol implementations carry the full metadata
surface), and ``engine-conformance`` (execution-engine matrices —
anything exposing ``matmul``/``rmatmul`` kernels — statically provide
``nbytes`` and the column-stats surface).

Run it as ``repro lint [paths] [--rule ID] [--format json]`` or
``python -m repro.analysis``; suppress a single line with
``# repro: lint-ignore[rule-id]`` (unused suppressions are themselves
findings).  ``tests/test_analysis_self.py`` keeps the shipped tree
clean on every tier-1 pass.
"""

from repro.analysis.engine import (
    AnalysisConfig,
    AnalysisReport,
    ModuleContext,
    Project,
    Rule,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, DEFAULT_CONFIG, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisReport",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "get_rules",
    "run_analysis",
]
