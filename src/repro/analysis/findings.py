"""The :class:`Finding` record every analysis rule reports.

A finding is data, not an exception: the engine collects findings from
all rules over all files, filters them through allowlists and inline
suppressions, and only then does the CLI decide an exit code.  Keeping
the record tiny and ordered makes reports deterministic — findings sort
by (path, line, rule, message), so two runs over the same tree always
print in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the engine (posix separators, so
    reports are stable across platforms); ``line`` is 1-based; ``rule``
    is the reporting rule's id (``wall-clock``, ``lock-discipline``,
    ...); ``message`` says what is wrong and what to do instead.
    """

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line: [rule] message`` (one report line)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for ``--format json`` reports."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }
