"""``python -m repro.analysis`` — run the lint from the command line."""

import sys

from repro.analysis.cli import main

sys.exit(main())
