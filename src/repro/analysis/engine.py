"""The rule-plugin analysis engine behind ``repro lint``.

The engine owns everything that is *not* rule-specific:

- **File discovery and parsing.**  Targets may be files or directories;
  directories are walked for ``*.py``.  A file that cannot be read,
  decoded, or parsed is reported as a ``parse-error`` finding and the
  scan continues — a broken file must never take the linter down with
  it (the original ``tools/check_telemetry_hygiene.py`` crashed here).
- **The two rule passes.**  :meth:`Rule.check_module` runs once per
  parsed file with a :class:`ModuleContext`; :meth:`Rule.check_project`
  runs once per analysis with a :class:`Project` symbol table of every
  class seen across all files — the hook cross-class rules (protocol
  conformance) need.
- **Allowlists.**  :class:`AnalysisConfig` maps rule ids to path
  patterns (``fnmatch`` over posix paths) that are exempt wholesale —
  the sanctioned chokepoints: ``repro/obs/console.py`` may print,
  ``repro/rng.py`` may construct generators.
- **Inline suppressions.**  ``# repro: lint-ignore[rule-id]`` on (or
  immediately above) a line silences exactly that line for exactly that
  rule.  Unknown rule ids and suppressions that silenced nothing are
  themselves findings (rule id ``lint-ignore``) — dead suppressions rot
  into false documentation otherwise.

Rules never raise for bad *target* code; they return findings.  Usage
errors (unknown rule id, missing path) raise
:class:`repro.errors.StaticAnalysisError`, which the CLI maps to exit 2.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.errors import StaticAnalysisError

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "ClassInfo",
    "ModuleContext",
    "PARSE_RULE_ID",
    "Project",
    "Rule",
    "SUPPRESS_RULE_ID",
    "Suppression",
    "class_members",
    "is_abstract_body",
    "iter_python_files",
    "run_analysis",
]

#: Rule id under which unreadable/unparseable files are reported.
PARSE_RULE_ID = "parse-error"

#: Rule id under which bad suppressions (unknown id, unused) are reported.
SUPPRESS_RULE_ID = "lint-ignore"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([^\]]*)\]")


class Rule:
    """Base class for analysis rules (the plugin protocol).

    Subclasses set ``id`` (kebab-case, stable — it is what suppressions
    and ``--rule`` select) and ``description`` (one line for
    ``--list-rules``), then override :meth:`check_module`,
    :meth:`check_project`, or both.  Both default to "no findings" so a
    rule implements only the pass it needs.
    """

    id: str = ""
    description: str = ""

    def check_module(self, module: "ModuleContext") -> Iterable[Finding]:
        """Per-file pass: inspect one parsed module, yield findings."""
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        """Cross-file pass: inspect the whole-project symbol table."""
        return ()


@dataclass
class Suppression:
    """One parsed ``# repro: lint-ignore[rule-id]`` comment.

    ``target_line`` is the code line it silences (the comment's own
    line for trailing comments, the next code line for comment-only
    lines); ``comment_line`` is where the comment physically sits,
    which is where unknown/unused-suppression findings point.
    """

    rule: str
    target_line: int
    comment_line: int
    used: bool = False


class ModuleContext:
    """Everything a per-file rule pass may inspect for one source file.

    ``label`` is the path as given (posix separators) — it is what
    findings carry and what allowlist patterns match against.  ``tree``
    is ``None`` when the file failed to read/parse; the engine then
    reports ``parse_failure`` and skips the rule passes for this file.
    """

    def __init__(
        self,
        path: Path,
        label: str,
        source: str | None = None,
        tree: ast.Module | None = None,
        parse_failure: Finding | None = None,
    ) -> None:
        self.path = path
        self.label = label
        self.source = source
        self.tree = tree
        self.parse_failure = parse_failure
        self.suppressions: list[Suppression] = (
            _parse_suppressions(source) if source is not None and tree is not None else []
        )

    def finding(self, rule: str, line: int, message: str) -> Finding:
        """Build a finding against this module."""
        return Finding(path=self.label, line=line, rule=rule, message=message)


@dataclass
class ClassInfo:
    """One class definition in the project symbol table.

    ``bases`` holds the *simple* names of base expressions (``Name``
    ids and the terminal attribute of dotted bases) — cross-file
    resolution is by simple name, which is exactly as precise as a
    single-pass AST lint can honestly be.  ``members`` maps attribute
    name to how it is provided: ``"def"``/``"property"``/``"assign"``
    are concrete, ``"abstract"`` (body is ``raise NotImplementedError``
    or ``...``) and ``"annotation"`` (bare ``x: T``) are declarations
    only.
    """

    name: str
    module: ModuleContext
    node: ast.ClassDef
    bases: tuple[str, ...]
    members: Mapping[str, str]

    @property
    def lineno(self) -> int:
        return self.node.lineno


class Project:
    """Cross-file symbol table handed to :meth:`Rule.check_project`."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = list(modules)
        #: Simple class name -> definitions (duplicates across files kept).
        self.classes: dict[str, list[ClassInfo]] = {}
        for module in self.modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=tuple(_base_names(node)),
                        members=class_members(node),
                    )
                    self.classes.setdefault(node.name, []).append(info)

    def resolve_class(self, name: str) -> ClassInfo | None:
        """First definition of ``name`` anywhere in the project, if any."""
        infos = self.classes.get(name)
        return infos[0] if infos else None

    def iter_classes(self) -> Iterator[ClassInfo]:
        for infos in self.classes.values():
            yield from infos


@dataclass(frozen=True)
class AnalysisConfig:
    """Per-rule path allowlists (the sanctioned chokepoints).

    ``allowlists`` maps rule id to ``fnmatch`` patterns over the
    module label (posix separators).  A pattern also matches when the
    label *ends with* ``/pattern``, so ``repro/rng.py`` exempts
    ``src/repro/rng.py`` no matter which root the scan started from.
    """

    allowlists: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def allows(self, rule_id: str, label: str) -> bool:
        for pattern in self.allowlists.get(rule_id, ()):
            if fnmatch(label, pattern) or fnmatch(label, "*/" + pattern):
                return True
        return False


@dataclass(frozen=True)
class AnalysisReport:
    """The result of one :func:`run_analysis` call."""

    findings: tuple[Finding, ...]
    files: int
    rule_ids: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_text(self) -> list[str]:
        """One formatted line per finding, sorted."""
        return [finding.format() for finding in self.findings]

    def as_dict(self) -> dict[str, object]:
        """JSON-ready report (``repro lint --format json``)."""
        return {
            "files": self.files,
            "rules": list(self.rule_ids),
            "findings": [finding.as_dict() for finding in self.findings],
            "ok": self.ok,
        }


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand lint targets into a sorted list of ``.py`` files.

    Directories are walked recursively; explicit files are taken as-is.
    A target that exists but is neither raises
    :class:`~repro.errors.StaticAnalysisError`, as does a missing one.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise StaticAnalysisError(f"no such file or directory: {path}")
    return files


def load_module(path: Path) -> ModuleContext:
    """Read and parse one file, degrading failures to ``parse-error``."""
    label = Path(path).as_posix()
    try:
        source = path.read_bytes().decode("utf-8")
    except (OSError, UnicodeDecodeError) as error:
        failure = Finding(
            path=label,
            line=1,
            rule=PARSE_RULE_ID,
            message=f"could not read source ({type(error).__name__}); file skipped",
        )
        return ModuleContext(path, label, parse_failure=failure)
    try:
        tree = ast.parse(source, filename=label)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", None) or 1
        detail = getattr(error, "msg", None) or str(error)
        failure = Finding(
            path=label,
            line=line,
            rule=PARSE_RULE_ID,
            message=f"could not parse source ({detail}); file skipped",
        )
        return ModuleContext(path, label, source=source, parse_failure=failure)
    return ModuleContext(path, label, source=source, tree=tree)


def _parse_suppressions(source: str) -> list[Suppression]:
    """Extract ``lint-ignore`` comments, mapping each to its target line.

    Only real ``COMMENT`` tokens count (a docstring *describing* the
    syntax is not a suppression).  A trailing comment targets its own
    line; a comment-only line targets the next line that holds code
    (blank and comment-only lines are skipped), so multi-line
    statements can carry the suppression just above them.
    """
    lines = source.splitlines()
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # the file already parsed, so this is vanishingly rare
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        index, column = token.start
        comment_only = not lines[index - 1][:column].strip()
        target = index
        if comment_only:
            target = index + 1
            while target <= len(lines):
                nxt = lines[target - 1].strip()
                if nxt and not nxt.startswith("#"):
                    break
                target += 1
        for rule_id in match.group(1).split(","):
            rule_id = rule_id.strip()
            if rule_id:
                suppressions.append(
                    Suppression(rule=rule_id, target_line=target, comment_line=index)
                )
    return suppressions


def _base_names(node: ast.ClassDef) -> Iterator[str]:
    for base in node.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr
        elif isinstance(base, ast.Subscript):  # Generic[...] style bases
            inner = base.value
            if isinstance(inner, ast.Name):
                yield inner.id
            elif isinstance(inner, ast.Attribute):
                yield inner.attr


def is_abstract_body(node: ast.FunctionDef) -> bool:
    """Whether a method body only declares (``...``/``NotImplementedError``)."""
    body = list(node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # docstring
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    if isinstance(stmt, ast.Raise) and stmt.exc is not None:
        exc = stmt.exc
        callee = exc.func if isinstance(exc, ast.Call) else exc
        return isinstance(callee, ast.Name) and callee.id == "NotImplementedError"
    return False


def class_members(node: ast.ClassDef) -> dict[str, str]:
    """Map each attribute a class provides to how it is provided.

    Kinds: ``"def"`` (method), ``"property"`` (decorated method),
    ``"abstract"`` (declaration-only body), ``"annotation"`` (bare
    ``x: T``), ``"assign"`` (class-level or ``self.x = ...`` in any
    method).  Concrete kinds win over declarations when both appear.
    """
    declared: dict[str, str] = {}
    concrete: dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            is_property = any(
                (isinstance(dec, ast.Name) and dec.id == "property")
                or (isinstance(dec, ast.Attribute) and dec.attr in ("getter", "setter"))
                for dec in stmt.decorator_list
            )
            if is_abstract_body(stmt):
                declared[stmt.name] = "abstract"
            else:
                concrete[stmt.name] = "property" if is_property else "def"
            # Instance attributes assigned in any method body count as
            # provided (``__init__`` assignments are the common case).
            for sub in ast.walk(stmt):
                for target in _assigned_targets(sub):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        concrete.setdefault(target.attr, "assign")
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    concrete[target.id] = "assign"
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is None:
                declared.setdefault(stmt.target.id, "annotation")
            else:
                concrete[stmt.target.id] = "assign"
    return {**declared, **concrete}


def _assigned_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and (
        not isinstance(node, ast.AnnAssign) or node.value is not None
    ):
        yield node.target


def run_analysis(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
    config: AnalysisConfig | None = None,
    known_rule_ids: Iterable[str] | None = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file reachable from ``paths``.

    ``known_rule_ids`` is the universe a suppression may legally name —
    defaults to the ids of ``rules``.  Pass the full registry when
    running a ``--rule`` subset so suppressions for unselected rules
    are neither applied nor flagged as unknown (they are simply left
    alone, and not counted as unused either).
    """
    config = config or AnalysisConfig()
    selected_ids = {rule.id for rule in rules}
    known = set(known_rule_ids) if known_rule_ids is not None else set(selected_ids)
    known |= selected_ids

    modules = [load_module(path) for path in iter_python_files(paths)]
    findings: list[Finding] = []
    for module in modules:
        if module.parse_failure is not None:
            findings.append(module.parse_failure)
            continue
        for rule in rules:
            if config.allows(rule.id, module.label):
                continue
            findings.extend(rule.check_module(module))

    project = Project([m for m in modules if m.tree is not None])
    per_module_allowed = {
        (rule.id, module.label)
        for rule in rules
        for module in modules
        if config.allows(rule.id, module.label)
    }
    for rule in rules:
        for finding in rule.check_project(project):
            if (rule.id, finding.path) not in per_module_allowed:
                findings.append(finding)

    # Apply inline suppressions, then flag the bad ones.
    by_label = {module.label: module for module in modules}
    kept: list[Finding] = []
    for finding in findings:
        module = by_label.get(finding.path)
        suppressed = False
        if module is not None:
            for sup in module.suppressions:
                if sup.rule == finding.rule and sup.target_line == finding.line:
                    sup.used = True
                    suppressed = True
        if not suppressed:
            kept.append(finding)
    for module in modules:
        for sup in module.suppressions:
            if sup.rule not in known:
                kept.append(
                    module.finding(
                        SUPPRESS_RULE_ID,
                        sup.comment_line,
                        f"unknown rule id {sup.rule!r} in lint-ignore"
                        " (see `repro lint --list-rules`)",
                    )
                )
            elif sup.rule in selected_ids and not sup.used:
                kept.append(
                    module.finding(
                        SUPPRESS_RULE_ID,
                        sup.comment_line,
                        f"unused lint-ignore[{sup.rule}] — the rule reports"
                        " nothing on this line; remove the suppression",
                    )
                )

    return AnalysisReport(
        findings=tuple(sorted(kept)),
        files=len(modules),
        rule_ids=tuple(sorted(selected_ids)),
    )
