"""``feature-source``: classes claiming the protocol carry full metadata.

Every consumer of :class:`repro.data.FeatureSource` — trainers,
scorers, the serving encode path — assumes the five-member metadata
surface (``feature_names``, ``n_levels``, ``n_rows``, ``n_shards``,
``n_classes``) is present alongside ``iter_shards``.  Python's duck
typing defers that check to whichever attribute access happens to run
first, often deep inside an epoch loop; this rule makes it static.

A class *claims* the protocol when it defines ``iter_shards``, or names
``FeatureSource``/``SourceDecorator`` (or any class that itself claims)
among its bases.  A claiming class must then provide all five members
**somewhere statically visible**: its own body (methods, properties,
class-level or ``self.x = ...`` assignments) or a base class resolvable
by simple name anywhere in the scanned tree — decorators inherit the
delegating properties from ``SourceDecorator``, so only genuinely
missing surface is flagged.

Protocol-definition classes (any required member is declaration-only —
a bare annotation or a ``raise NotImplementedError`` body) are skipped:
they *are* the contract, not an implementation of it.  Shard-level
containers below the feature layer that happen to expose an
``iter_shards`` of raw shards are the legitimate use of
``# repro: lint-ignore[feature-source]`` with a justifying comment.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.engine import ClassInfo, Project, Rule
from repro.analysis.findings import Finding

__all__ = ["FeatureSourceRule", "REQUIRED_MEMBERS"]

REQUIRED_MEMBERS = (
    "feature_names",
    "n_levels",
    "n_rows",
    "n_shards",
    "n_classes",
)

_PROTOCOL_BASES = frozenset({"FeatureSource", "SourceDecorator"})
_CONCRETE_KINDS = frozenset({"def", "property", "assign"})


class FeatureSourceRule(Rule):
    id = "feature-source"
    description = (
        "classes claiming the FeatureSource protocol (iter_shards /"
        " source bases) must statically define feature_names, n_levels,"
        " n_rows, n_shards, n_classes"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        claims_cache: dict[int, bool] = {}
        findings: list[Finding] = []
        for info in project.iter_classes():
            if not self._claims(project, info, claims_cache, set()):
                continue
            if any(
                info.members.get(member) in ("annotation", "abstract")
                for member in REQUIRED_MEMBERS
            ):
                continue  # protocol definition, not an implementation
            missing = [
                member
                for member in REQUIRED_MEMBERS
                if not self._provides(project, info, member, set())
            ]
            if missing:
                findings.append(
                    info.module.finding(
                        self.id,
                        info.lineno,
                        f"class {info.name!r} claims the FeatureSource"
                        " protocol but does not statically define:"
                        f" {', '.join(missing)}",
                    )
                )
        return findings

    def _claims(
        self,
        project: Project,
        info: ClassInfo,
        cache: dict[int, bool],
        visiting: set[int],
    ) -> bool:
        key = id(info.node)
        if key in cache:
            return cache[key]
        if key in visiting:
            return False
        visiting.add(key)
        result = "iter_shards" in info.members
        if not result:
            for base in info.bases:
                if base in _PROTOCOL_BASES:
                    result = True
                    break
                base_info = project.resolve_class(base)
                if base_info is not None and self._claims(
                    project, base_info, cache, visiting
                ):
                    result = True
                    break
        cache[key] = result
        return result

    def _provides(
        self,
        project: Project,
        info: ClassInfo,
        member: str,
        visiting: set[int],
    ) -> bool:
        key = id(info.node)
        if key in visiting:
            return False
        visiting.add(key)
        if info.members.get(member) in _CONCRETE_KINDS:
            return True
        for base in info.bases:
            base_info = project.resolve_class(base)
            if base_info is not None and self._provides(
                project, base_info, member, visiting
            ):
                return True
        return False
