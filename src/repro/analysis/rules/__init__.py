"""The rule registry: every analyzer ``repro lint`` ships, plus the
default per-rule allowlists naming the sanctioned chokepoint modules.

Adding a rule is: write a :class:`~repro.analysis.engine.Rule` subclass
in a module here, append an instance to :data:`ALL_RULES`, give it a
fixture test in ``tests/test_analysis_rules.py``.  Rule ids are stable
API — suppression comments and ``--rule`` flags reference them.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.engine import AnalysisConfig, Rule
from repro.analysis.rules.determinism import UnseededRandomRule
from repro.analysis.rules.engines import EngineConformanceRule
from repro.analysis.rules.exceptions import ExceptionHygieneRule
from repro.analysis.rules.hygiene import BarePrintRule, RawSleepRule, WallClockRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.process import ProcessDisciplineRule
from repro.analysis.rules.protocol import FeatureSourceRule
from repro.errors import StaticAnalysisError

__all__ = ["ALL_RULES", "DEFAULT_CONFIG", "get_rules"]

#: Every shipped rule, in catalog order.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    BarePrintRule(),
    RawSleepRule(),
    UnseededRandomRule(),
    LockDisciplineRule(),
    ExceptionHygieneRule(),
    ProcessDisciplineRule(),
    FeatureSourceRule(),
    EngineConformanceRule(),
)

#: The sanctioned chokepoints.  Patterns match the end of the scanned
#: path, so they hold whether the scan root is ``src``, ``src/repro``,
#: or the repo root.  Benchmarks are exempt from ``bare-print`` —
#: they are human-facing reporting scripts, not library code.
DEFAULT_CONFIG = AnalysisConfig(
    allowlists={
        "bare-print": ("repro/obs/console.py", "benchmarks/*"),
        "raw-sleep": ("repro/resilience/backoff.py",),
        "unseeded-random": ("repro/rng.py",),
        "process-discipline": ("repro/parallel/*",),
    }
)


def get_rules(ids: Sequence[str] | None = None) -> tuple[Rule, ...]:
    """Resolve ``--rule`` selections against the registry.

    ``None``/empty selects every rule; unknown ids raise
    :class:`~repro.errors.StaticAnalysisError`.
    """
    if not ids:
        return ALL_RULES
    by_id = {rule.id: rule for rule in ALL_RULES}
    unknown = [rule_id for rule_id in ids if rule_id not in by_id]
    if unknown:
        raise StaticAnalysisError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
            f" (known: {', '.join(sorted(by_id))})"
        )
    return tuple(by_id[rule_id] for rule_id in dict.fromkeys(ids))
