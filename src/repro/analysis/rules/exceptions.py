"""``exception-hygiene``: failures are typed, routed, or re-raised.

Three checks per module:

- **No bare ``except:``.**  It catches ``SystemExit`` and
  ``KeyboardInterrupt``; name the exceptions (``except Exception`` at
  the broadest) so shutdown still works.
- **Broad handlers must do something with the error.**  An
  ``except Exception``/``except BaseException`` body that neither
  re-raises, emits through :mod:`repro.obs`, nor touches a
  :mod:`repro.errors` type is a swallowed failure — the class of bug
  that turns a corrupt shard into a silently-wrong experiment.
- **Raised types are catchable.**  A ``raise SomeName(...)`` must name
  a builtin exception, a :mod:`repro.errors` type, or a local subclass
  of one — so ``except ReproError`` at a layer boundary is a real
  contract.  Lowercase names (``raise error``) are re-raises of caught
  objects and are left alone, as are dotted names the lint cannot
  resolve.

Handlers that intentionally *transport* an exception (a worker thread
parking the error on a queue for the consumer to re-raise) are exactly
what ``# repro: lint-ignore[exception-hygiene]`` with a justifying
comment is for.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["ExceptionHygieneRule"]

_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_BROAD = ("Exception", "BaseException")


class ExceptionHygieneRule(Rule):
    id = "exception-hygiene"
    description = (
        "no bare except, broad handlers must re-raise or route through"
        " repro.errors/repro.obs, and raised types must be repro.errors"
        " or stdlib exceptions"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        allowed, error_names, error_module_aliases = _allowed_names(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(
                    self._check_handler(module, node, error_names, error_module_aliases)
                )
            elif isinstance(node, ast.Raise):
                findings.extend(
                    self._check_raise(module, node, allowed, error_module_aliases)
                )
        return findings

    def _check_handler(
        self,
        module: ModuleContext,
        node: ast.ExceptHandler,
        error_names: set[str],
        error_module_aliases: set[str],
    ) -> Iterable[Finding]:
        if node.type is None:
            yield module.finding(
                self.id,
                node.lineno,
                "bare 'except:' also catches SystemExit/KeyboardInterrupt —"
                " name the exceptions (at broadest, 'except Exception')",
            )
            return
        caught = _caught_names(node.type)
        broad = next((name for name in caught if name in _BROAD), None)
        if broad is None:
            return
        if _handler_routes_error(node, error_names, error_module_aliases):
            return
        yield module.finding(
            self.id,
            node.lineno,
            f"'except {broad}' neither re-raises nor routes the error"
            " through repro.errors/repro.obs — swallowed failures hide"
            " real bugs",
        )

    def _check_raise(
        self,
        module: ModuleContext,
        node: ast.Raise,
        allowed: set[str],
        error_module_aliases: set[str],
    ) -> Iterable[Finding]:
        if node.exc is None:
            return  # bare re-raise
        callee = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
        if isinstance(callee, ast.Attribute):
            # errors.X(...) through a repro.errors alias is fine; other
            # dotted names are unresolvable statically — leave them be.
            return
        if not isinstance(callee, ast.Name):
            return
        name = callee.id
        if name in allowed or not name[:1].isupper():
            return  # known-good type, or a variable holding an exception
        yield module.finding(
            self.id,
            node.lineno,
            f"raise of unknown type {name!r} — raise a repro.errors type"
            " (or a stdlib exception subclass) so callers can catch"
            " ReproError at layer boundaries",
        )


def _allowed_names(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """(raisable names, repro.errors-ish names, repro.errors module aliases).

    Raisable = builtins + names imported from ``repro.errors`` + local
    classes whose base chain reaches one of those (resolved to a
    fixpoint, so ``class B(A)`` after ``class A(ReproError)`` counts).
    """
    allowed = set(_BUILTIN_EXCEPTIONS)
    error_names: set[str] = set()
    module_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "repro.errors":
                for alias in node.names:
                    local = alias.asname or alias.name
                    allowed.add(local)
                    error_names.add(local)
            elif node.module == "repro":
                for alias in node.names:
                    if alias.name == "errors":
                        module_aliases.add(alias.asname or "errors")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.errors" and alias.asname:
                    module_aliases.add(alias.asname)
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in allowed:
                continue
            for base in cls.bases:
                base_ok = (
                    isinstance(base, ast.Name) and base.id in allowed
                ) or (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in module_aliases
                )
                if base_ok:
                    allowed.add(cls.name)
                    if not (isinstance(base, ast.Name) and base.id in _BUILTIN_EXCEPTIONS):
                        error_names.add(cls.name)
                    changed = True
                    break
    return allowed, error_names, module_aliases


def _caught_names(expr: ast.expr) -> list[str]:
    if isinstance(expr, ast.Tuple):
        names: list[str] = []
        for element in expr.elts:
            names.extend(_caught_names(element))
        return names
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return []


def _handler_routes_error(
    node: ast.ExceptHandler,
    error_names: set[str],
    error_module_aliases: set[str],
) -> bool:
    """Whether a broad handler re-raises or routes through repro seams."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise):
            return True
        if isinstance(sub, ast.Call):
            func = sub.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            # Routing through the observability layer: console emit, a
            # metrics counter, or a span recording the failure.
            if callee in ("emit", "inc", "record_exception"):
                return True
        if isinstance(sub, ast.Name) and sub.id in error_names:
            return True
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
            if sub.value.id in error_module_aliases:
                return True
    return False
