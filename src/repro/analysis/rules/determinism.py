"""``unseeded-random``: every stochastic path flows through ``repro.rng``.

The repo's headline guarantee — bit-identical reproduction, including
kill/resume bit-identity across the resilience layer — dies the moment
one code path draws randomness the experiment seed does not control.
This rule forbids, everywhere except the ``repro/rng.py`` chokepoint
(default config allowlist):

- ``import random`` / ``from random import ...``: the stdlib module is
  one hidden global stream, unusable for reproducible work;
- ``np.random.seed(...)``: mutates global numpy state out from under
  every other consumer;
- ``np.random.default_rng(...)`` / ``RandomState(...)`` /
  ``Generator(...)``: direct construction bypasses the
  :func:`repro.rng.ensure_rng` / :func:`repro.rng.spawn_rngs` seam that
  derives every stream from the experiment seed (an *unseeded*
  ``default_rng()`` is worse still — it draws OS entropy);
- legacy global draws (``np.random.rand``, ``np.random.shuffle``, ...).

Only ``ast.Call`` nodes are inspected, so ``np.random.Generator`` in a
type annotation is fine.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["UnseededRandomRule"]

_STDLIB_MESSAGE = (
    "stdlib 'random' is one hidden global stream — derive seeded numpy"
    " generators via repro.rng instead"
)


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    description = (
        "randomness must flow through repro.rng — no stdlib random,"
        " np.random global state, or direct generator construction"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        numpy_aliases: set[str] = set()  # `import numpy as np` names
        np_random_aliases: set[str] = set()  # `from numpy import random`
        np_random_members: dict[str, str] = {}  # local name -> member
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        numpy_aliases.add("numpy")
                    elif alias.name == "random":
                        findings.append(
                            module.finding(self.id, node.lineno, _STDLIB_MESSAGE)
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        module.finding(self.id, node.lineno, _STDLIB_MESSAGE)
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        np_random_members[alias.asname or alias.name] = alias.name
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            member = self._np_random_member(
                node.func, numpy_aliases, np_random_aliases, np_random_members
            )
            if member is None:
                continue
            findings.append(
                module.finding(
                    self.id, node.lineno, self._message(member, node)
                )
            )
        return findings

    @staticmethod
    def _np_random_member(
        func: ast.expr,
        numpy_aliases: set[str],
        np_random_aliases: set[str],
        np_random_members: dict[str, str],
    ) -> str | None:
        """The ``numpy.random`` member a call targets, if any."""
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_aliases
            ):
                return func.attr  # np.random.X(...)
            if isinstance(base, ast.Name) and base.id in np_random_aliases:
                return func.attr  # random.X(...) via `from numpy import random`
        elif isinstance(func, ast.Name) and func.id in np_random_members:
            return np_random_members[func.id]  # X(...) via `from numpy.random import X`
        return None

    @staticmethod
    def _message(member: str, node: ast.Call) -> str:
        if member == "seed":
            return (
                "np.random.seed() mutates global numpy RNG state — derive"
                " seeded generators via repro.rng instead"
            )
        if member == "default_rng" and not node.args and not node.keywords:
            return (
                "unseeded np.random.default_rng() draws OS entropy — seed"
                " it through repro.rng.ensure_rng"
            )
        if member in ("default_rng", "RandomState", "Generator"):
            return (
                f"direct np.random.{member}(...) — route through"
                " repro.rng.ensure_rng/spawn_rngs so every stream derives"
                " from the experiment seed"
            )
        return (
            f"np.random.{member}() uses the global numpy stream — draw from"
            " a generator obtained via repro.rng instead"
        )
