"""``engine-conformance``: execution-engine matrices carry a full surface.

The kernel dispatchers in :mod:`repro.ml.sparse` route ``matmul`` /
``rmatmul`` by type, and everything downstream of them — FISTA's
column scaling, NB's count accumulation, the telemetry that sizes
shard transport — assumes an execution-engine matrix also answers
``nbytes`` and the column-stats calls.  A class that ships the two
kernels but not the rest works until a trainer touches the missing
member mid-epoch.  This rule makes the contract static: any class
defining **both** ``matmul`` and ``rmatmul`` as concrete methods is an
execution-engine matrix and must statically provide ``nbytes``,
``column_counts``, ``column_means`` and ``column_scales`` (own body or
a base class resolvable in the scanned tree).

Protocol-definition classes (any required member declaration-only — a
bare annotation or a ``raise NotImplementedError`` body) are skipped,
exactly as in the ``feature-source`` rule.  Linear-algebra helpers
that happen to expose both kernels without being an engine are the
legitimate use of ``# repro: lint-ignore[engine-conformance]`` with a
justifying comment.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.engine import ClassInfo, Project, Rule
from repro.analysis.findings import Finding

__all__ = ["EngineConformanceRule", "ENGINE_KERNELS", "ENGINE_SURFACE"]

#: Defining both (concretely) marks a class as an execution engine.
ENGINE_KERNELS = ("matmul", "rmatmul")

#: What every execution-engine matrix must additionally provide.
ENGINE_SURFACE = (
    "nbytes",
    "column_counts",
    "column_means",
    "column_scales",
)

_DECLARATION_KINDS = ("annotation", "abstract")


class EngineConformanceRule(Rule):
    id = "engine-conformance"
    description = (
        "classes exposing matmul and rmatmul as execution-engine kernels"
        " must statically define nbytes, column_counts, column_means,"
        " column_scales"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for info in project.iter_classes():
            if not all(
                self._concrete(project, info, kernel, set())
                for kernel in ENGINE_KERNELS
            ):
                continue
            if any(
                info.members.get(member) in _DECLARATION_KINDS
                for member in ENGINE_KERNELS + ENGINE_SURFACE
            ):
                continue  # protocol definition, not an implementation
            missing = [
                member
                for member in ENGINE_SURFACE
                if not self._concrete(project, info, member, set())
            ]
            if missing:
                findings.append(
                    info.module.finding(
                        self.id,
                        info.lineno,
                        f"class {info.name!r} exposes matmul/rmatmul as an"
                        " execution engine but does not statically define:"
                        f" {', '.join(missing)}",
                    )
                )
        return findings

    def _concrete(
        self,
        project: Project,
        info: ClassInfo,
        member: str,
        visiting: set[int],
    ) -> bool:
        key = id(info.node)
        if key in visiting:
            return False
        visiting.add(key)
        if info.members.get(member) in ("def", "property", "assign"):
            return True
        for base in info.bases:
            base_info = project.resolve_class(base)
            if base_info is not None and self._concrete(
                project, base_info, member, visiting
            ):
                return True
        return False
