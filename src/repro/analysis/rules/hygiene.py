"""Telemetry-hygiene rules migrated from ``tools/check_telemetry_hygiene.py``.

Three rules, all over the AST (comments and strings can mention
whatever they like):

- ``wall-clock``: no ``time.time()``.  Wall clocks drift and step;
  durations must come from ``time.perf_counter``/``time.monotonic``.
- ``bare-print``: no ``print()`` without ``file=``.  Output routes
  through :func:`repro.obs.console.emit`; ``repro/obs/console.py`` is
  the allowlisted chokepoint (benchmarks are exempt by default config —
  they are reporting scripts, not library code).
- ``raw-sleep``: no ``time.sleep()``.  Delays route through
  :func:`repro.resilience.backoff.sleep` so they stay policy-driven and
  fault-injectable; ``repro/resilience/backoff.py`` is the chokepoint.

Unlike the original script, ``from time import time as now`` followed
by ``now()`` calls yields **one** finding — at the import, which is the
root cause — with the alias call lines tagged in the message.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["BarePrintRule", "RawSleepRule", "WallClockRule"]


def _format_alias_calls(lines: list[int]) -> str:
    if not lines:
        return ""
    noun = "line" if len(lines) == 1 else "lines"
    return f" (called via alias at {noun} {', '.join(str(n) for n in sorted(lines))})"


class _TimeMemberRule(Rule):
    """Shared machinery for the ``time.<member>()`` rules."""

    member = ""
    call_message = ""
    import_message = ""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        imports: dict[str, int] = {}  # local alias -> import lineno
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name == self.member:
                        imports[alias.asname or alias.name] = node.lineno
        alias_calls: dict[int, list[int]] = {line: [] for line in imports.values()}
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == self.member
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                findings.append(
                    module.finding(self.id, node.lineno, self.call_message)
                )
            elif isinstance(func, ast.Name) and func.id in imports:
                alias_calls[imports[func.id]].append(node.lineno)
        for import_line in sorted(set(imports.values())):
            findings.append(
                module.finding(
                    self.id,
                    import_line,
                    self.import_message + _format_alias_calls(alias_calls[import_line]),
                )
            )
        return findings


class WallClockRule(_TimeMemberRule):
    id = "wall-clock"
    description = (
        "no time.time() in library code — durations use"
        " time.perf_counter/time.monotonic"
    )
    member = "time"
    call_message = (
        "time.time() — use time.perf_counter/time.monotonic for durations"
    )
    import_message = (
        "'from time import time' — use time.perf_counter/time.monotonic"
        " for durations"
    )


class RawSleepRule(_TimeMemberRule):
    id = "raw-sleep"
    description = (
        "no time.sleep() — delays route through repro.resilience.backoff.sleep"
    )
    member = "sleep"
    call_message = (
        "time.sleep() — route delays through repro.resilience.backoff.sleep"
    )
    import_message = (
        "'from time import sleep' — route delays through"
        " repro.resilience.backoff.sleep"
    )


class BarePrintRule(Rule):
    id = "bare-print"
    description = (
        "no print() without file= — output routes through"
        " repro.obs.console.emit"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and not any(kw.arg == "file" for kw in node.keywords)
            ):
                findings.append(
                    module.finding(
                        self.id,
                        node.lineno,
                        "bare print() — route output through"
                        " repro.obs.console.emit",
                    )
                )
        return findings
