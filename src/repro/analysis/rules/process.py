"""``process-discipline``: process fan-out stays inside ``repro.parallel``.

Multiprocessing primitives carry failure modes the rest of the tree is
not written to survive: orphaned shared-memory segments, zombie
workers, queues whose feeder threads deadlock interpreter shutdown.
The ``repro.parallel`` package centralises all of it — worker-death
detection, deterministic segment sweeps, drain-then-join teardown — so
every other module must go through its decorators and pools rather
than spawning processes ad hoc.

This rule forbids, everywhere except the ``repro/parallel/*``
allowlist:

- constructing ``multiprocessing`` primitives (``Process``, ``Pool``,
  the queue/synchronisation types, ``Manager``, ``get_context``), via
  any import spelling;
- attaching or creating ``multiprocessing.shared_memory`` segments
  (``SharedMemory``, ``ShareableList``);
- ``concurrent.futures.ProcessPoolExecutor`` (a process pool by
  another name) and raw ``os.fork``.

Only ``ast.Call`` nodes are inspected — naming these types in
annotations or docs is fine.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["ProcessDisciplineRule"]

#: Constructors of ``multiprocessing`` (and ``multiprocessing.dummy``
#: excluded on purpose: that one is threads).
_MP_MEMBERS = frozenset(
    {
        "Process",
        "Pool",
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Pipe",
        "Manager",
        "Event",
        "Lock",
        "RLock",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "Barrier",
        "Value",
        "Array",
        "get_context",
    }
)

_SHM_MEMBERS = frozenset({"SharedMemory", "ShareableList"})


class ProcessDisciplineRule(Rule):
    id = "process-discipline"
    description = (
        "multiprocessing primitives (processes, queues, shared memory)"
        " may only be constructed inside repro.parallel"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        mp_aliases: set[str] = set()  # `import multiprocessing as mp`
        shm_aliases: set[str] = set()  # `... import shared_memory as shm`
        futures_aliases: set[str] = set()  # `import concurrent.futures as cf`
        os_aliases: set[str] = set()  # `import os`
        direct: dict[str, str] = {}  # local name -> flagged member
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name, local = alias.name, alias.asname
                    if name == "multiprocessing":
                        mp_aliases.add(local or "multiprocessing")
                    elif name == "multiprocessing.shared_memory":
                        # `import multiprocessing.shared_memory` binds the
                        # top-level package unless aliased.
                        if local is None:
                            mp_aliases.add("multiprocessing")
                        else:
                            shm_aliases.add(local)
                    elif name == "concurrent.futures":
                        if local is None:
                            futures_aliases.add("concurrent")
                        else:
                            futures_aliases.add(local)
                    elif name == "os":
                        os_aliases.add(local or "os")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "multiprocessing":
                    for alias in node.names:
                        if alias.name in _MP_MEMBERS:
                            direct[alias.asname or alias.name] = alias.name
                        elif alias.name == "shared_memory":
                            shm_aliases.add(alias.asname or alias.name)
                elif node.module == "multiprocessing.shared_memory":
                    for alias in node.names:
                        if alias.name in _SHM_MEMBERS:
                            direct[alias.asname or alias.name] = alias.name
                elif node.module == "concurrent.futures":
                    for alias in node.names:
                        if alias.name == "ProcessPoolExecutor":
                            direct[alias.asname or alias.name] = alias.name
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name == "fork":
                            direct[alias.asname or alias.name] = "fork"
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            member = self._flagged_member(
                node.func,
                mp_aliases,
                shm_aliases,
                futures_aliases,
                os_aliases,
                direct,
            )
            if member is None:
                continue
            findings.append(
                module.finding(
                    self.id,
                    node.lineno,
                    f"{member} constructs a multiprocessing primitive —"
                    " process fan-out belongs in repro.parallel (wrap a"
                    " FeatureSource in ProcessPrefetchingSource, or use"
                    " ProcessFISTAPasses / ProcessPredictorPool)",
                )
            )
        return findings

    @staticmethod
    def _flagged_member(
        func: ast.expr,
        mp_aliases: set[str],
        shm_aliases: set[str],
        futures_aliases: set[str],
        os_aliases: set[str],
        direct: dict[str, str],
    ) -> str | None:
        """The forbidden constructor a call targets, if any."""
        if isinstance(func, ast.Name):
            member = direct.get(func.id)
            return None if member is None else f"{member}(...)"
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in mp_aliases and func.attr in _MP_MEMBERS:
                return f"multiprocessing.{func.attr}(...)"
            if base.id in shm_aliases and func.attr in _SHM_MEMBERS:
                return f"shared_memory.{func.attr}(...)"
            if base.id in os_aliases and func.attr == "fork":
                return "os.fork()"
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            root, mid = base.value.id, base.attr
            if (
                root in mp_aliases
                and mid == "shared_memory"
                and func.attr in _SHM_MEMBERS
            ):
                return f"multiprocessing.shared_memory.{func.attr}(...)"
            if (
                root in futures_aliases
                and mid == "futures"
                and func.attr == "ProcessPoolExecutor"
            ):
                return "concurrent.futures.ProcessPoolExecutor(...)"
        if (
            isinstance(base, ast.Name)
            and base.id in futures_aliases
            and func.attr == "ProcessPoolExecutor"
        ):
            return "ProcessPoolExecutor(...)"
        return None
