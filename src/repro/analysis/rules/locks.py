"""``lock-discipline``: writes to lock-protected attributes stay locked.

For every class that assigns a ``threading.Lock``/``RLock``/
``Condition`` to a ``self`` attribute, the rule infers the set of
instance attributes the class itself treats as lock-protected — those
written at least once while the lock is held — and flags any *other*
write (plain assignment, ``+=`` read-modify-write, or subscript store
like ``self._queue[k] = v``) to the same attribute performed without
that lock.  This is self-calibrating: a class with no locked writes has
no protected set and is never flagged, so single-threaded code costs
nothing.

"Holding the lock" is recognised in the three forms the codebase
actually uses:

- ``with self._lock:`` blocks (including multi-item ``with``);
- paired ``lock.acquire()`` ... ``lock.release()`` regions over
  ``self._lock`` or a local alias (``lock = self._lock``) — the
  hot-path idiom in :mod:`repro.obs.metrics`, where a ``with`` frame
  is measurable overhead;
- ``threading.Condition(self._lock)`` shares its lock with the
  attribute it wraps (one lock *group*), so waiting/notifying through
  the condition and mutating under the raw lock are the same
  discipline — the :class:`~repro.serving.MicroBatcher` wakeup
  pattern.

Two conventional exemptions keep the rule honest about intent:
``__init__`` (construction precedes sharing) and methods named
``*_locked`` (the suffix is the codebase's documented "caller holds the
lock" contract, e.g. ``MicroBatcher._take_locked``).  Writes inside
nested ``def``/``lambda`` bodies are analysed as unlocked — a closure
runs later, when the enclosing ``with`` is long gone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


@dataclass
class _WriteEvent:
    attr: str
    lineno: int
    method: str
    held: frozenset[str]  # lock groups held at the write


@dataclass
class _ClassLocks:
    """Union-find over lock attribute names (Condition aliasing)."""

    parent: dict[str, str] = field(default_factory=dict)

    def add(self, name: str) -> None:
        self.parent.setdefault(name, name)

    def find(self, name: str) -> str:
        root = name
        while self.parent[root] != root:
            root = self.parent[root]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        self.parent[self.find(a)] = self.find(b)

    def __contains__(self, name: str) -> bool:
        return name in self.parent

    def names(self) -> Iterable[str]:
        return self.parent.keys()


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "attributes written under a class's lock must always be written"
        " under it — flags unlocked writes/increments to lock-protected"
        " state"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = _find_locks(node)
        if not locks.parent:
            return
        events: list[_WriteEvent] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collector = _MethodWalker(stmt.name, locks)
                collector.walk_body(stmt.body, frozenset())
                events.extend(collector.events)
        # Protected set: attr -> (group -> first locked write line).
        protected: dict[str, dict[str, int]] = {}
        for event in events:
            for group in event.held:
                protected.setdefault(event.attr, {}).setdefault(
                    group, event.lineno
                )
        group_locks: dict[str, list[str]] = {}
        for name in locks.names():
            group_locks.setdefault(locks.find(name), []).append(name)
        for event in events:
            if event.method == "__init__" or event.method.endswith("_locked"):
                continue
            groups = protected.get(event.attr)
            if not groups:
                continue
            missing = [g for g in groups if g not in event.held]
            if len(missing) < len(groups):
                continue  # held at least one lock that protects this attr
            lock_names = sorted(
                "self." + name
                for group in missing
                for name in group_locks.get(group, ())
            )
            example = min(groups[g] for g in missing)
            yield module.finding(
                self.id,
                event.lineno,
                f"'self.{event.attr}' is written under {'/'.join(lock_names)}"
                f" (e.g. line {example}) but written here without holding"
                " it — concurrent callers can interleave and lose updates",
            )


def _find_locks(node: ast.ClassDef) -> _ClassLocks:
    """Lock attributes the class assigns, grouped by shared underlying lock."""
    locks = _ClassLocks()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
            continue
        factory = _lock_factory_name(sub.value.func)
        if factory is None:
            continue
        for target in sub.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            locks.add(attr)
            if factory == "Condition" and sub.value.args:
                wrapped = _self_attr(sub.value.args[0])
                if wrapped is not None:
                    locks.union(attr, wrapped)
    return locks


def _lock_factory_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    return None


def _self_attr(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


class _MethodWalker:
    """Statement-ordered walk of one method tracking held lock groups."""

    def __init__(self, method: str, locks: _ClassLocks) -> None:
        self.method = method
        self.locks = locks
        self.aliases: dict[str, str] = {}  # local name -> lock attr
        self.events: list[_WriteEvent] = []

    def walk_body(self, body: list[ast.stmt], held: frozenset[str]) -> None:
        for stmt in body:
            held = self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: frozenset[str]) -> frozenset[str]:
        """Process one statement; returns the held-set for what follows."""
        if isinstance(stmt, ast.Assign):
            self._record_writes(stmt.targets, stmt.lineno, held)
            # Track `lock = self._lock` local aliases for acquire/release.
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                attr = _self_attr(stmt.value)
                if attr is not None and attr in self.locks:
                    self.aliases[stmt.targets[0].id] = attr
            return held
        if isinstance(stmt, ast.AugAssign):
            self._record_writes([stmt.target], stmt.lineno, held)
            return held
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._record_writes([stmt.target], stmt.lineno, held)
            return held
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            group, op = self._acquire_release(stmt.value)
            if op == "acquire":
                return held | {group}
            if op == "release":
                return held - {group}
            return held
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                group = self._lock_group(item.context_expr)
                if group is not None:
                    inner.add(group)
            self.walk_body(stmt.body, frozenset(inner))
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later: analyse its body as unlocked.
            self.walk_body(stmt.body, frozenset())
            return held
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_body(handler.body, held)
            self.walk_body(stmt.orelse, held)
            self.walk_body(stmt.finalbody, held)
            return held
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            self.walk_body(stmt.body, held)
            self.walk_body(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.ClassDef):
            return held
        return held

    def _record_writes(
        self, targets: list[ast.expr], lineno: int, held: frozenset[str]
    ) -> None:
        for target in targets:
            for attr in _written_attrs(target):
                self.events.append(
                    _WriteEvent(attr=attr, lineno=lineno, method=self.method, held=held)
                )

    def _lock_group(self, expr: ast.expr) -> str | None:
        attr = _self_attr(expr)
        if attr is None and isinstance(expr, ast.Name):
            attr = self.aliases.get(expr.id)
        if attr is not None and attr in self.locks:
            return self.locks.find(attr)
        return None

    def _acquire_release(self, call: ast.Call) -> tuple[str | None, str | None]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
            group = self._lock_group(func.value)
            if group is not None:
                return group, func.attr
        return None, None


def _written_attrs(target: ast.expr) -> Iterator[str]:
    """Instance attributes a store target mutates (``self.x``, ``self.x[k]``)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _written_attrs(element)
    elif isinstance(target, ast.Starred):
        yield from _written_attrs(target.value)
    elif isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr
    else:
        attr = _self_attr(target)
        if attr is not None:
            yield attr
