"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

The subcommands cover the workflows a downstream user reaches for
first:

- ``advise``      — join-safety advice for an emulated dataset.
- ``stats``       — Table-1-style statistics for the emulated datasets.
- ``run``         — one experiment cell (dataset × model × strategy).
- ``fit``         — fit one model configuration, in memory or
  out-of-core (``--stream`` with ``--shard-rows``/``--shards``).
- ``simulate``    — a OneXr Monte Carlo sweep over the FK domain size.
- ``usage``       — FK split-usage analysis of a fitted tree.
- ``save-model``  — fit a pipeline and export it as a serving artifact.
- ``predict``     — serve predictions from a saved artifact.
- ``serve-bench`` — single-row vs micro-batched serving throughput.

``fit``, ``predict`` and ``serve-bench`` accept ``--telemetry OUT.json``:
the command runs inside the process-wide tracer and writes its span-tree
run report (plus a metrics snapshot) when done.  ``stats`` appends the
process-wide metric registry to its output.

Everything the CLI does is a thin veneer over the public API, so the
commands double as living documentation of it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro import obs
from repro.obs import emit
from repro.core import (
    FAMILY_THRESHOLDS,
    advise,
    join_all_strategy,
    no_fk_strategy,
    no_join_strategy,
)
from repro.datasets import (
    OneXrScenario,
    dataset_statistics,
    generate_real_world,
)
from repro.datasets.realworld import DATASET_ORDER
from repro.experiments import (
    MODEL_REGISTRY,
    STREAMABLE_MODELS,
    FigureSeries,
    get_scale,
    run_experiment,
    sweep,
)
from repro.resilience.chaos import CHAOS_TRAINABLE

_STRATEGIES = {
    "JoinAll": join_all_strategy,
    "NoJoin": no_join_strategy,
    "NoFK": no_fk_strategy,
}


def _parse_parallel(value: str) -> int:
    """``--parallel workers=N`` (or bare ``N``) -> the worker count."""
    text = value[len("workers="):] if value.startswith("workers=") else value
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected workers=N (or a bare integer), got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {workers}"
        )
    return workers


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Are Key-Foreign Key Joins Safe to Avoid when "
            "Learning High-Capacity Classifiers?' (VLDB 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_advise = sub.add_parser("advise", help="join-safety advice for a dataset")
    p_advise.add_argument("dataset", choices=DATASET_ORDER)
    p_advise.add_argument(
        "--family",
        choices=sorted(FAMILY_THRESHOLDS),
        default="decision_tree",
    )
    p_advise.add_argument("--n-fact", type=int, default=2000)
    p_advise.add_argument("--seed", type=int, default=0)

    p_stats = sub.add_parser("stats", help="Table-1-style dataset statistics")
    p_stats.add_argument("--n-fact", type=int, default=2000)
    p_stats.add_argument("--seed", type=int, default=0)

    p_run = sub.add_parser("run", help="run one experiment cell")
    p_run.add_argument("dataset", choices=DATASET_ORDER)
    p_run.add_argument("model", choices=sorted(MODEL_REGISTRY))
    p_run.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="NoJoin"
    )
    p_run.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--engine",
        choices=["implicit", "dense", "factorized"],
        default="implicit",
        help=(
            "execution engine for the tuned model's kernels "
            "(lr_l1 only; 'factorized' pushes linear algebra through "
            "the KFK join)"
        ),
    )

    p_fit = sub.add_parser(
        "fit",
        help="fit one model configuration, in memory or out-of-core",
    )
    p_fit.add_argument("dataset", choices=DATASET_ORDER)
    p_fit.add_argument("model", choices=sorted(STREAMABLE_MODELS))
    p_fit.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="NoJoin"
    )
    p_fit.add_argument(
        "--stream",
        action="store_true",
        help="train out-of-core over bounded shards (repro.streaming)",
    )
    # Deliberately NOT an argparse mutually-exclusive group: the
    # contradiction is validated in _cmd_fit with a message explaining
    # *why* the combination is rejected, and regression-tested there.
    p_fit.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="rows per shard for --stream (bounds peak memory)",
    )
    p_fit.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of shards for --stream (alternative to --shard-rows)",
    )
    p_fit.add_argument(
        "--prefetch",
        type=int,
        default=None,
        metavar="DEPTH",
        help="prefetch shards on a background thread (queue depth)",
    )
    p_fit.add_argument(
        "--spill-cache",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help=(
            "cache encoded shards on disk between passes (optional "
            "directory; default: a private temporary one)"
        ),
    )
    p_fit.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write atomic training checkpoints here (requires --stream; "
            "logistic training switches to mode='incremental', the "
            "checkpointable path)"
        ),
    )
    p_fit.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="shard steps between checkpoints (with --checkpoint-dir)",
    )
    p_fit.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore the latest checkpoint in --checkpoint-dir before "
            "training (an empty directory simply starts fresh)"
        ),
    )
    p_fit.add_argument(
        "--parallel",
        type=_parse_parallel,
        default=0,
        metavar="workers=N",
        help=(
            "train on the process-parallel tier (repro.parallel): exact "
            "logistic fans its FISTA passes across N worker processes "
            "(bit-identical to serial); other models prefetch shards "
            "through an N-process pool"
        ),
    )
    p_fit.add_argument(
        "--engine",
        choices=["implicit", "dense", "factorized"],
        default="implicit",
        help=(
            "execution engine: 'factorized' keeps each shard's KFK "
            "join factorized and pushes the training kernels through "
            "it (lr_l1, nb, ann for non-factorized engines)"
        ),
    )
    p_fit.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_fit.add_argument("--seed", type=int, default=0)
    p_fit.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.json",
        help="write a span-tree run report (join/encode/fit/score) here",
    )

    p_usage = sub.add_parser(
        "usage", help="FK split-usage analysis of a fitted tree (Section 5)"
    )
    p_usage.add_argument("dataset", choices=DATASET_ORDER)
    p_usage.add_argument("--n-fact", type=int, default=1200)
    p_usage.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser(
        "simulate", help="OneXr Monte Carlo sweep over the FK domain size"
    )
    p_sim.add_argument(
        "--n-r", type=int, nargs="+", default=[2, 10, 50, 200],
        help="FK domain sizes to sweep",
    )
    p_sim.add_argument("--n-train", type=int, default=400)
    p_sim.add_argument("--runs", type=int, default=4)
    p_sim.add_argument("--p", type=float, default=0.1)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--csv", action="store_true", help="emit CSV")

    p_save = sub.add_parser(
        "save-model", help="fit a pipeline and export a serving artifact"
    )
    p_save.add_argument("dataset", choices=DATASET_ORDER)
    p_save.add_argument("model", choices=sorted(MODEL_REGISTRY))
    p_save.add_argument(
        "--strategy",
        choices=[*sorted(_STRATEGIES), "Advised"],
        default="NoJoin",
        help="feature-set strategy; 'Advised' applies the tuple-ratio rule",
    )
    p_save.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_save.add_argument("--seed", type=int, default=0)
    p_save.add_argument("--out", required=True, help="artifact output path")

    p_pred = sub.add_parser(
        "predict", help="serve predictions from a saved artifact"
    )
    p_pred.add_argument("artifact", help="path written by save-model")
    p_pred.add_argument(
        "--rows", type=int, default=10, help="test rows to predict"
    )
    p_pred.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch size"
    )
    p_pred.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.json",
        help="write a run report with the server's latency metrics here",
    )

    p_bench = sub.add_parser(
        "serve-bench",
        help="single-row vs micro-batched serving throughput",
    )
    p_bench.add_argument("dataset", choices=DATASET_ORDER)
    p_bench.add_argument(
        "--model", choices=sorted(MODEL_REGISTRY), default="dt_gini"
    )
    p_bench.add_argument("--rows", type=int, default=2000)
    p_bench.add_argument("--batch-size", type=int, default=64)
    p_bench.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--engine",
        choices=["implicit", "factorized"],
        default="implicit",
        help=(
            "serving engine: 'factorized' precomputes per-dimension "
            "score contributions at model load (lr_l1 only among the "
            "tunable models)"
        ),
    )
    p_bench.add_argument(
        "--clients",
        type=int,
        default=0,
        help=(
            "client threads for the concurrent-runtime benchmark; 0 "
            "(default) runs the single-threaded single-vs-batched report"
        ),
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker-pool sizes to sweep (with --clients > 0)",
    )
    p_bench.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help=(
            "aggregate open-loop arrival rate in requests/s (with "
            "--clients > 0); default: unbounded (saturation)"
        ),
    )
    p_bench.add_argument(
        "--inject-faults",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "serve under chaos instead of benchmarking: poison RATE of "
            "request rows, bound the admission queue and quarantine the "
            "poison, then verify every surviving answer against a clean "
            "server (exit 2 on any divergence)"
        ),
    )
    p_bench.add_argument(
        "--parallel",
        type=_parse_parallel,
        default=0,
        metavar="workers=N",
        help=(
            "benchmark the process-sharded serving tier "
            "(repro.parallel.ProcessPredictorPool) with an N-process "
            "pool instead of the --workers thread sweep (requires "
            "--clients > 0)"
        ),
    )
    p_bench.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.json",
        help="write a span-tree run report of the benchmark here",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos soak: train and serve under injected faults, verified",
    )
    p_chaos.add_argument("dataset", choices=DATASET_ORDER)
    p_chaos.add_argument(
        "--train-model",
        choices=sorted(CHAOS_TRAINABLE),
        default="ann",
        help="checkpointable streaming model for the training leg",
    )
    p_chaos.add_argument(
        "--serve-model", choices=sorted(MODEL_REGISTRY), default="dt_gini"
    )
    p_chaos.add_argument("--shards", type=int, default=6)
    p_chaos.add_argument("--epochs", type=int, default=2)
    p_chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.25,
        help="fraction of shards given a transient first-attempt fault",
    )
    p_chaos.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="SHARDS",
        help=(
            "kill training after this many shard steps and resume from "
            "the checkpoint (default: mid-run)"
        ),
    )
    p_chaos.add_argument("--rows", type=int, default=160)
    p_chaos.add_argument(
        "--poison-rate",
        type=float,
        default=0.08,
        help="fraction of request rows the serving model poisons",
    )
    p_chaos.add_argument("--max-queue-rows", type=int, default=16)
    p_chaos.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--telemetry",
        default=None,
        metavar="OUT.json",
        help="write a span-tree run report of the soak here",
    )

    p_lint = sub.add_parser(
        "lint",
        help="static-analysis suite over the codebase (repro.analysis)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    return parser


def _write_telemetry(path: str, metrics=None) -> None:
    """Write the tracer's run report (and a metrics snapshot) to ``path``."""
    report = obs.tracer().report(metrics=metrics)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    emit(f"telemetry report -> {path}")


def _cmd_advise(args: argparse.Namespace) -> int:
    dataset = generate_real_world(args.dataset, n_fact=args.n_fact, seed=args.seed)
    report = advise(dataset.schema, args.family, train_rows=dataset.train.size)
    emit(report)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    for name in DATASET_ORDER:
        dataset = generate_real_world(name, n_fact=args.n_fact, seed=args.seed)
        emit(dataset_statistics(dataset))
    metrics = obs.registry().snapshot()
    if metrics:
        emit("telemetry (process-wide registry):")
        for name, value in metrics.items():
            emit(f"  {name}: {value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.engine != "implicit" and args.model != "lr_l1":
        emit(
            f"error: --engine {args.engine} is supported for the tuned "
            f"'lr_l1' model only; {args.model!r} does not take an "
            f"execution engine",
            error=True,
        )
        return 2
    dataset = generate_real_world(
        args.dataset, n_fact=get_scale(args.scale).n_fact, seed=args.seed
    )
    strategy = _STRATEGIES[args.strategy]()
    result = run_experiment(
        dataset, args.model, strategy, scale=get_scale(args.scale),
        engine=args.engine,
    )
    emit(result)
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.data import SourceSpec

    # Usage errors exit before any dataset generation happens.
    if args.shard_rows is not None and args.shards is not None:
        emit(
            "error: --shard-rows and --shards both fix the shard layout; "
            "pass exactly one (rows per shard, or shard count)",
            error=True,
        )
        return 2
    streaming_flags = (
        ("--shard-rows", args.shard_rows),
        ("--shards", args.shards),
        ("--prefetch", args.prefetch),
        ("--spill-cache", args.spill_cache),
        ("--checkpoint-dir", args.checkpoint_dir),
    )
    if not args.stream and any(v is not None for _, v in streaming_flags):
        names = "/".join(name for name, _ in streaming_flags)
        emit(f"error: {names} require --stream", error=True)
        return 2
    for name, value in streaming_flags[:3]:
        if value is not None and value < 1:
            emit(f"error: {name} must be >= 1, got {value}", error=True)
            return 2
    if args.resume and args.checkpoint_dir is None:
        emit(
            "error: --resume restores from --checkpoint-dir; pass the "
            "directory the interrupted run checkpointed into",
            error=True,
        )
        return 2
    if args.checkpoint_every < 1:
        emit(
            f"error: --checkpoint-every must be >= 1, got "
            f"{args.checkpoint_every}",
            error=True,
        )
        return 2
    if args.engine == "factorized":
        from repro.experiments.runner import FACTORIZABLE_MODELS

        if args.model not in FACTORIZABLE_MODELS:
            emit(
                f"error: --engine factorized supports "
                f"{'/'.join(FACTORIZABLE_MODELS)}; {args.model!r} "
                f"consumes raw codes or dense hidden layers",
                error=True,
            )
            return 2
        if args.spill_cache is not None:
            emit(
                "error: --spill-cache stores gathered code tables and "
                "cannot hold factorized shards; drop it or use "
                "--engine implicit",
                error=True,
            )
            return 2
    if args.stream:
        n_shards = args.shards
        if args.shard_rows is None and n_shards is None:
            # --stream without a layout still exercises the shard path,
            # as a single bounded shard.
            n_shards = 1
        spec = SourceSpec(
            shard_rows=args.shard_rows,
            n_shards=n_shards,
            prefetch=args.prefetch,
            spill_cache=args.spill_cache or False,
            engine=args.engine,
        )
    else:
        spec = SourceSpec(engine=args.engine)

    def run() -> int:
        scale = get_scale(args.scale)
        dataset = generate_real_world(
            args.dataset, n_fact=scale.n_fact, seed=args.seed
        )
        strategy = _STRATEGIES[args.strategy]()
        # Checkpointing needs a loop the trainer can cut at a shard
        # boundary: incremental mode for the logistic model, the
        # default epoch loop for partial_fit models.
        mode = (
            "incremental"
            if args.checkpoint_dir is not None and args.model == "lr_l1"
            else "exact"
        )
        result = run_experiment(
            dataset, args.model, strategy, scale=scale, source=spec,
            seed=args.seed, mode=mode, checkpoint=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every, resume=args.resume,
            parallel_workers=args.parallel,
        )
        if args.stream:
            shards = result.best_params
            emit(
                f"streamed {shards['n_shards']} shard(s) of "
                f"<= {shards['shard_rows']} rows"
            )
        emit(result)
        return 0

    if args.telemetry is None:
        return run()
    with obs.tracer().collect():
        code = run()
    _write_telemetry(args.telemetry)
    return code


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.ml import DecisionTreeClassifier, GridSearch

    def tree_factory():
        return GridSearch(
            DecisionTreeClassifier(unseen="majority", random_state=0),
            grid={"minsplit": [10, 100], "cp": [1e-3, 0.01]},
        )

    results = sweep(
        lambda n_r: OneXrScenario(n_train=args.n_train, n_r=n_r, p=args.p),
        values=args.n_r,
        model_factory=tree_factory,
        strategies=[join_all_strategy(), no_join_strategy(), no_fk_strategy()],
        n_runs=args.runs,
        seed=args.seed,
    )
    figure = FigureSeries(
        title="OneXr: avg test error vs |D_FK| (gini tree)", x_label="n_r"
    )
    for n_r, result in results:
        figure.add_point(n_r, result.test_error)
    emit(figure.to_csv() if args.csv else figure.render())
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.experiments.analysis import fk_usage_report

    dataset = generate_real_world(args.dataset, n_fact=args.n_fact, seed=args.seed)
    report = fk_usage_report(dataset, strategy=join_all_strategy())
    emit(report)
    emit(
        f"foreign-key splits: {report.fraction('fk'):.0%}; "
        f"foreign-feature splits: {report.fraction('foreign'):.0%}"
    )
    return 0


def _resolve_strategy(name: str, dataset, model_key: str):
    """Map a CLI strategy name to a strategy, honouring the advisor."""
    if name == "Advised":
        family = MODEL_REGISTRY[model_key].family
        report = advise(
            dataset.schema, family, train_rows=dataset.train.size
        )
        return report.recommended_strategy()
    return _STRATEGIES[name]()


def _cmd_save_model(args: argparse.Namespace) -> int:
    from repro.experiments import fit_pipeline
    from repro.serving import artifact_from_pipeline, save_artifact

    scale = get_scale(args.scale)
    dataset = generate_real_world(
        args.dataset, n_fact=scale.n_fact, seed=args.seed
    )
    strategy = _resolve_strategy(args.strategy, dataset, args.model)
    pipeline = fit_pipeline(dataset, args.model, strategy, scale=scale)
    artifact = artifact_from_pipeline(
        pipeline,
        dataset.schema,
        metadata={"seed": args.seed, "n_fact": scale.n_fact},
    )
    path = save_artifact(artifact, args.out)
    emit(pipeline.result())
    emit(f"saved {artifact.summary()}")
    emit(f"  -> {path}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.serving import PredictionServer, load_artifact

    def run() -> tuple[int, PredictionServer | None]:
        artifact = load_artifact(args.artifact)
        dataset = generate_real_world(
            artifact.dataset_name,
            n_fact=artifact.metadata.get("n_fact"),
            seed=artifact.metadata.get("seed", 0),
        )
        server = PredictionServer(
            artifact, dataset.schema, max_batch_size=args.batch_size
        )
        rows = dataset.test[: args.rows]
        if rows.size == 0:
            emit("no rows requested (increase --rows)", error=True)
            return 2, server
        fact_rows = dataset.schema.fact.select(rows)
        predictions = server.predict_table(fact_rows)
        target = dataset.schema.fact.column(dataset.schema.target)
        observed = target.domain.decode(target.codes[rows])
        hits = sum(p == o for p, o in zip(predictions, observed))
        emit(f"{artifact.summary()}")
        for i, (p, o) in enumerate(zip(predictions, observed)):
            emit(f"  row {rows[i]}: predicted={p!r} observed={o!r}")
        emit(
            f"accuracy {hits}/{len(predictions)} = "
            f"{hits / len(predictions):.3f}"
        )
        emit(server.stats())
        return 0, server

    if args.telemetry is None:
        return run()[0]
    with obs.tracer().collect():
        code, server = run()
    # The server's registry carries the serving latency breakdown; the
    # report's metrics section scopes to it.
    _write_telemetry(
        args.telemetry, metrics=server.metrics if server else None
    )
    return code


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving import concurrent_serving_throughput, serving_throughput

    if args.clients > 0 and args.arrival_rate is not None and args.arrival_rate <= 0:
        emit(
            f"error: --arrival-rate must be positive, got "
            f"{args.arrival_rate}",
            error=True,
        )
        return 2
    if args.inject_faults is not None:
        if not 0 < args.inject_faults <= 1:
            emit(
                f"error: --inject-faults takes a poison rate in (0, 1], "
                f"got {args.inject_faults}",
                error=True,
            )
            return 2
        if args.clients > 0:
            emit(
                "error: --inject-faults verifies answers row by row; the "
                "concurrent benchmark (--clients) measures throughput — "
                "run them separately",
                error=True,
            )
            return 2
    if args.engine == "factorized":
        if args.model != "lr_l1":
            emit(
                f"error: --engine factorized serves linear/NB score "
                f"tables; {args.model!r} is not a factorizable tuned "
                f"model (use --model lr_l1)",
                error=True,
            )
            return 2
        if args.inject_faults is not None:
            emit(
                "error: --inject-faults runs its own implicit-engine "
                "verification servers; run it without --engine",
                error=True,
            )
            return 2
    if args.parallel:
        if args.clients <= 0:
            emit(
                "error: --parallel benchmarks the process-sharded "
                "concurrent runtime; pass --clients > 0",
                error=True,
            )
            return 2
        if args.inject_faults is not None:
            emit(
                "error: --parallel and --inject-faults are separate "
                "modes; run them separately",
                error=True,
            )
            return 2

    def run() -> int:
        scale = get_scale(args.scale)
        dataset = generate_real_world(
            args.dataset, n_fact=scale.n_fact, seed=args.seed
        )
        if args.inject_faults is not None:
            from repro.resilience.chaos import chaos_serving_run

            verdict = chaos_serving_run(
                dataset,
                args.model,
                rows=args.rows,
                poison_rate=args.inject_faults,
                seed=args.seed,
                scale=scale,
            )
            emit(
                f"fault-injected serving: {args.dataset}/{args.model}, "
                f"{verdict['rows']} requests at poison rate "
                f"{verdict['poison_rate']}: shed {verdict['shed']}, "
                f"quarantined {verdict['poisoned_rows']} poisoned row(s), "
                f"{verdict['deadline_expired']}/{verdict['deadline_rows']} "
                f"deadline(s) expired, {verdict['mismatched']} mismatched "
                f"answer(s) -> {'ok' if verdict['ok'] else 'FAILED'}"
            )
            return 0 if verdict["ok"] else 2
        if args.clients > 0:
            report = concurrent_serving_throughput(
                dataset,
                model_key=args.model,
                rows=args.rows,
                batch_size=args.batch_size,
                clients=args.clients,
                worker_counts=(
                    (args.parallel,) if args.parallel else tuple(args.workers)
                ),
                arrival_rate=args.arrival_rate,
                scale=scale,
                tier="process" if args.parallel else "thread",
                engine=args.engine,
            )
            emit(report.render())
            return 0 if report.identical else 2
        report = serving_throughput(
            dataset,
            model_key=args.model,
            rows=args.rows,
            batch_size=args.batch_size,
            scale=scale,
            engine=args.engine,
        )
        emit(report.render())
        return 0

    if args.telemetry is None:
        return run()
    with obs.tracer().collect():
        code = run()
    _write_telemetry(args.telemetry)
    return code


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import chaos_soak

    def run() -> int:
        scale = get_scale(args.scale)
        dataset = generate_real_world(
            args.dataset, n_fact=scale.n_fact, seed=args.seed
        )
        report = chaos_soak(
            dataset,
            train_model=args.train_model,
            serve_model=args.serve_model,
            n_shards=args.shards,
            epochs=args.epochs,
            fault_rate=args.fault_rate,
            kill_after=args.kill_after,
            rows=args.rows,
            poison_rate=args.poison_rate,
            max_queue_rows=args.max_queue_rows,
            seed=args.seed,
            scale=scale,
        )
        emit(report.render())
        return 0 if report.ok else 2

    if args.telemetry is None:
        return run()
    with obs.tracer().collect():
        code = run()
    _write_telemetry(args.telemetry)
    return code


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis suite (``repro lint``)."""
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "advise": _cmd_advise,
    "stats": _cmd_stats,
    "run": _cmd_run,
    "fit": _cmd_fit,
    "simulate": _cmd_simulate,
    "usage": _cmd_usage,
    "save-model": _cmd_save_model,
    "predict": _cmd_predict,
    "serve-bench": _cmd_serve_bench,
    "chaos": _cmd_chaos,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (:class:`ReproError`) are rendered as one-line
    messages with exit code 2 instead of tracebacks.
    """
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        emit(f"error: {error}", error=True)
        return 2


if __name__ == "__main__":
    sys.exit(main())
