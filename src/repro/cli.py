"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the workflows a downstream user reaches for
first:

- ``advise``    — join-safety advice for an emulated dataset.
- ``stats``     — Table-1-style statistics for the emulated datasets.
- ``run``       — one experiment cell (dataset × model × strategy).
- ``simulate``  — a OneXr Monte Carlo sweep over the FK domain size.

Everything the CLI does is a thin veneer over the public API, so the
commands double as living documentation of it.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core import (
    FAMILY_THRESHOLDS,
    advise,
    join_all_strategy,
    no_fk_strategy,
    no_join_strategy,
)
from repro.datasets import (
    OneXrScenario,
    dataset_statistics,
    generate_real_world,
)
from repro.datasets.realworld import DATASET_ORDER
from repro.experiments import (
    MODEL_REGISTRY,
    FigureSeries,
    get_scale,
    run_experiment,
    sweep,
)

_STRATEGIES = {
    "JoinAll": join_all_strategy,
    "NoJoin": no_join_strategy,
    "NoFK": no_fk_strategy,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Are Key-Foreign Key Joins Safe to Avoid when "
            "Learning High-Capacity Classifiers?' (VLDB 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_advise = sub.add_parser("advise", help="join-safety advice for a dataset")
    p_advise.add_argument("dataset", choices=DATASET_ORDER)
    p_advise.add_argument(
        "--family",
        choices=sorted(FAMILY_THRESHOLDS),
        default="decision_tree",
    )
    p_advise.add_argument("--n-fact", type=int, default=2000)
    p_advise.add_argument("--seed", type=int, default=0)

    p_stats = sub.add_parser("stats", help="Table-1-style dataset statistics")
    p_stats.add_argument("--n-fact", type=int, default=2000)
    p_stats.add_argument("--seed", type=int, default=0)

    p_run = sub.add_parser("run", help="run one experiment cell")
    p_run.add_argument("dataset", choices=DATASET_ORDER)
    p_run.add_argument("model", choices=sorted(MODEL_REGISTRY))
    p_run.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="NoJoin"
    )
    p_run.add_argument("--scale", choices=["smoke", "default", "paper"])
    p_run.add_argument("--seed", type=int, default=0)

    p_usage = sub.add_parser(
        "usage", help="FK split-usage analysis of a fitted tree (Section 5)"
    )
    p_usage.add_argument("dataset", choices=DATASET_ORDER)
    p_usage.add_argument("--n-fact", type=int, default=1200)
    p_usage.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser(
        "simulate", help="OneXr Monte Carlo sweep over the FK domain size"
    )
    p_sim.add_argument(
        "--n-r", type=int, nargs="+", default=[2, 10, 50, 200],
        help="FK domain sizes to sweep",
    )
    p_sim.add_argument("--n-train", type=int, default=400)
    p_sim.add_argument("--runs", type=int, default=4)
    p_sim.add_argument("--p", type=float, default=0.1)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--csv", action="store_true", help="emit CSV")
    return parser


def _cmd_advise(args: argparse.Namespace) -> int:
    dataset = generate_real_world(args.dataset, n_fact=args.n_fact, seed=args.seed)
    report = advise(dataset.schema, args.family, train_rows=dataset.train.size)
    print(report)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    for name in DATASET_ORDER:
        dataset = generate_real_world(name, n_fact=args.n_fact, seed=args.seed)
        print(dataset_statistics(dataset))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    dataset = generate_real_world(
        args.dataset, n_fact=get_scale(args.scale).n_fact, seed=args.seed
    )
    strategy = _STRATEGIES[args.strategy]()
    result = run_experiment(
        dataset, args.model, strategy, scale=get_scale(args.scale)
    )
    print(result)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.ml import DecisionTreeClassifier, GridSearch

    def tree_factory():
        return GridSearch(
            DecisionTreeClassifier(unseen="majority", random_state=0),
            grid={"minsplit": [10, 100], "cp": [1e-3, 0.01]},
        )

    results = sweep(
        lambda n_r: OneXrScenario(n_train=args.n_train, n_r=n_r, p=args.p),
        values=args.n_r,
        model_factory=tree_factory,
        strategies=[join_all_strategy(), no_join_strategy(), no_fk_strategy()],
        n_runs=args.runs,
        seed=args.seed,
    )
    figure = FigureSeries(
        title="OneXr: avg test error vs |D_FK| (gini tree)", x_label="n_r"
    )
    for n_r, result in results:
        figure.add_point(n_r, result.test_error)
    print(figure.to_csv() if args.csv else figure.render())
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.experiments.analysis import fk_usage_report

    dataset = generate_real_world(args.dataset, n_fact=args.n_fact, seed=args.seed)
    report = fk_usage_report(dataset, strategy=join_all_strategy())
    print(report)
    print(
        f"foreign-key splits: {report.fraction('fk'):.0%}; "
        f"foreign-feature splits: {report.fraction('foreign'):.0%}"
    )
    return 0


_COMMANDS = {
    "advise": _cmd_advise,
    "stats": _cmd_stats,
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "usage": _cmd_usage,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
