"""Compatibility shim for legacy editable installs.

All metadata lives in ``pyproject.toml``.  This file exists so
``pip install -e . --no-use-pep517`` (and ``python setup.py develop``)
keep working on toolchains too old to build PEP 660 editable wheels —
e.g. offline environments without the ``wheel`` package.
"""

from setuptools import setup

setup()
